#include "image/image_store.h"

#include <gtest/gtest.h>

#include "image/precompute.h"

namespace fuzzydb {
namespace {

ImageStoreOptions SmallOptions() {
  ImageStoreOptions options;
  options.num_images = 60;
  options.palette_size = 27;
  options.seed = 99;
  return options;
}

TEST(ImageStoreTest, GeneratesRequestedCollection) {
  Result<ImageStore> store = ImageStore::Generate(SmallOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 60u);
  EXPECT_EQ(store->palette().size(), 27u);
  for (const ImageRecord& rec : store->images()) {
    EXPECT_TRUE(ValidateHistogram(rec.histogram).ok());
    EXPECT_GT(rec.shape.Area(), 0.0);
  }
}

TEST(ImageStoreTest, GenerationIsDeterministicInSeed) {
  Result<ImageStore> a = ImageStore::Generate(SmallOptions());
  Result<ImageStore> b = ImageStore::Generate(SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->image(i).histogram, b->image(i).histogram);
  }
  ImageStoreOptions other = SmallOptions();
  other.seed = 100;
  Result<ImageStore> c = ImageStore::Generate(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->image(0).histogram, c->image(0).histogram);
}

TEST(ImageStoreTest, FindById) {
  ImageStoreOptions options = SmallOptions();
  options.first_id = 1000;
  Result<ImageStore> store = ImageStore::Generate(options);
  ASSERT_TRUE(store.ok());
  Result<const ImageRecord*> rec = store->Find(1010);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->id, 1010u);
  EXPECT_FALSE(store->Find(999).ok());
  EXPECT_FALSE(store->Find(1060).ok());
}

TEST(ImageStoreTest, ColorGradeInUnitIntervalAndReflexive) {
  Result<ImageStore> store = ImageStore::Generate(SmallOptions());
  ASSERT_TRUE(store.ok());
  const Histogram& target = store->image(0).histogram;
  EXPECT_NEAR(store->ColorGrade(target, target), 1.0, 1e-9);
  for (const ImageRecord& rec : store->images()) {
    double g = store->ColorGrade(rec.histogram, target);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
}

TEST(ImageStoreTest, RejectsBadOptions) {
  ImageStoreOptions bad = SmallOptions();
  bad.num_images = 0;
  EXPECT_FALSE(ImageStore::Generate(bad).ok());
  bad = SmallOptions();
  bad.palette_size = 1;
  EXPECT_FALSE(ImageStore::Generate(bad).ok());
  bad = SmallOptions();
  bad.min_shape_vertices = 2;
  EXPECT_FALSE(ImageStore::Generate(bad).ok());
  bad = SmallOptions();
  bad.max_shape_vertices = 2;
  EXPECT_FALSE(ImageStore::Generate(bad).ok());
}

TEST(PrecomputeTest, CacheAgreesWithDirectComputation) {
  Result<ImageStore> store = ImageStore::Generate(SmallOptions());
  ASSERT_TRUE(store.ok());
  Result<PairwiseDistanceCache> cache = PairwiseDistanceCache::Build(*store);
  ASSERT_TRUE(cache.ok());
  const QuadraticFormDistance& qfd = store->color_distance();
  for (size_t i = 0; i < store->size(); i += 7) {
    for (size_t j = 0; j < store->size(); j += 11) {
      double direct =
          qfd.Distance(store->image(i).histogram, store->image(j).histogram);
      // The cache is built through the eigen-space embedding kernel, which
      // agrees with the quadratic form up to eigensolver roundoff.
      EXPECT_NEAR(cache->Distance(i, j), direct, 1e-9);
    }
  }
  EXPECT_DOUBLE_EQ(cache->Distance(5, 5), 0.0);
  EXPECT_DOUBLE_EQ(cache->Distance(3, 9), cache->Distance(9, 3));
}

TEST(PrecomputeTest, NearestMatchesBruteForce) {
  Result<ImageStore> store = ImageStore::Generate(SmallOptions());
  ASSERT_TRUE(store.ok());
  Result<PairwiseDistanceCache> cache = PairwiseDistanceCache::Build(*store);
  ASSERT_TRUE(cache.ok());
  std::vector<std::pair<size_t, double>> nn = cache->Nearest(0, 5);
  ASSERT_EQ(nn.size(), 5u);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_GE(nn[i].second, nn[i - 1].second);
  }
  // The closest neighbour must beat (or tie) every other object.
  for (size_t j = 1; j < store->size(); ++j) {
    EXPECT_GE(cache->Distance(0, j), nn[0].second - 1e-12);
  }
  // k larger than the collection clamps.
  EXPECT_EQ(cache->Nearest(0, 500).size(), store->size() - 1);
}

TEST(PrecomputeTest, RequiresAtLeastTwoImages) {
  ImageStoreOptions one = SmallOptions();
  one.num_images = 1;
  Result<ImageStore> store = ImageStore::Generate(one);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(PairwiseDistanceCache::Build(*store).ok());
}

}  // namespace
}  // namespace fuzzydb
