#include "middleware/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "middleware/naive.h"
#include "sim/experiment.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

QueryPtr Conjunction2() {
  return Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
}

TEST(EstimateCostTest, ValidatesArguments) {
  CostModel model;
  EXPECT_FALSE(EstimateCost(Algorithm::kNaive, 0, 2, 10, model).ok());
  EXPECT_FALSE(EstimateCost(Algorithm::kNaive, 100, 0, 10, model).ok());
  EXPECT_FALSE(EstimateCost(Algorithm::kNaive, 100, 2, 0, model).ok());
  EXPECT_FALSE(EstimateCost(Algorithm::kAuto, 100, 2, 10, model).ok());
}

TEST(EstimateCostTest, KnownFormulas) {
  CostModel model;  // unit prices
  EXPECT_DOUBLE_EQ(*EstimateCost(Algorithm::kNaive, 1000, 2, 10, model),
                   2000.0);
  EXPECT_DOUBLE_EQ(
      *EstimateCost(Algorithm::kDisjunctionShortcut, 1000, 3, 10, model),
      30.0);
  // A0 at m=2: 2*sqrt(kN) sorted + the same number of random probes.
  double depth = std::sqrt(10.0 * 1000.0);
  EXPECT_NEAR(*EstimateCost(Algorithm::kFagin, 1000, 2, 10, model),
              2.0 * depth + 2.0 * depth, 1e-9);
  // NRA charges no random accesses even at random_unit = 100.
  CostModel pricey;
  pricey.random_unit = 100.0;
  EXPECT_DOUBLE_EQ(
      *EstimateCost(Algorithm::kNoRandomAccess, 1000, 2, 10, pricey),
      *EstimateCost(Algorithm::kNoRandomAccess, 1000, 2, 10, CostModel{}));
}

TEST(EstimateCostTest, DepthNeverExceedsN) {
  CostModel model;
  // k close to N: the depth estimate saturates at N, so A0's estimate can
  // never be below the truth by more than the constant factor.
  double est = *EstimateCost(Algorithm::kFagin, 100, 2, 100, model);
  EXPECT_LE(est, 2.0 * 100 + 2.0 * 100 + 1e-9);
}

TEST(EstimateAccessMixTest, SplitsMatchTheChargedTotals) {
  CostModel model;
  model.random_unit = 3.0;
  for (Algorithm algo : {Algorithm::kNaive, Algorithm::kFagin,
                         Algorithm::kThreshold, Algorithm::kNoRandomAccess,
                         Algorithm::kCombined}) {
    Result<AccessMix> mix = EstimateAccessMix(algo, 1000, 2, 10, model);
    ASSERT_TRUE(mix.ok());
    Result<double> cost = EstimateCost(algo, 1000, 2, 10, model);
    ASSERT_TRUE(cost.ok());
    EXPECT_DOUBLE_EQ(*cost, mix->sorted * model.sorted_unit +
                                mix->random * model.random_unit)
        << AlgorithmName(algo);
  }
  // NRA is pure sorted; naive too.
  EXPECT_DOUBLE_EQ(
      EstimateAccessMix(Algorithm::kNoRandomAccess, 1000, 2, 10, model)
          ->random,
      0.0);
  EXPECT_DOUBLE_EQ(
      EstimateAccessMix(Algorithm::kNaive, 1000, 2, 10, model)->random, 0.0);
}

TEST(EstimateAccessMixTest, CombinedPeriodTracksThePriceRatio) {
  // CA amortizes its random resolutions over h = random/sorted price
  // rounds, so a pricier random access shrinks the estimated random count.
  CostModel cheap;  // h = 1
  CostModel pricey;
  pricey.random_unit = 10.0;  // h = 10
  Result<AccessMix> at_cheap =
      EstimateAccessMix(Algorithm::kCombined, 1000, 2, 10, cheap);
  Result<AccessMix> at_pricey =
      EstimateAccessMix(Algorithm::kCombined, 1000, 2, 10, pricey);
  ASSERT_TRUE(at_cheap.ok());
  ASSERT_TRUE(at_pricey.ok());
  EXPECT_DOUBLE_EQ(at_cheap->sorted, at_pricey->sorted);
  EXPECT_NEAR(at_pricey->random, at_cheap->random / 10.0, 1e-9);
  EXPECT_EQ(DefaultCombinedPeriod(cheap), 1u);
  EXPECT_EQ(DefaultCombinedPeriod(pricey), 10u);
  // sorted_unit also enters the ratio.
  CostModel slow_sorted;
  slow_sorted.sorted_unit = 5.0;
  slow_sorted.random_unit = 10.0;
  EXPECT_EQ(DefaultCombinedPeriod(slow_sorted), 2u);
}

TEST(ConsideredBaseNameTest, StripsParameters) {
  EXPECT_EQ(ConsideredBaseName("ca(h=4)"), "ca");
  EXPECT_EQ(ConsideredBaseName("rtree(dim=3)"), "rtree");
  EXPECT_EQ(ConsideredBaseName("ta"), "ta");
  EXPECT_EQ(ConsideredBaseName("fagin-a0"), "fagin-a0");
  EXPECT_EQ(ConsideredBaseName(""), "");
}

TEST(DerivePrefetchDepthTest, FollowsExecutorsAndSortedShare) {
  CostModel model;
  // A single executor can never overlap anything: depth 0 regardless.
  EXPECT_EQ(DerivePrefetchDepth(Algorithm::kThreshold, 1000, 2, 10, model, 1),
            0u);
  // NRA is pure sorted access: share 1.0 ⇒ deep prefetch, power of two,
  // clamped to [2, 64].
  size_t nra4 =
      DerivePrefetchDepth(Algorithm::kNoRandomAccess, 1000, 2, 10, model, 4);
  EXPECT_GE(nra4, 2u);
  EXPECT_LE(nra4, 64u);
  EXPECT_EQ(nra4 & (nra4 - 1), 0u) << "power of two, got " << nra4;
  // More executors never shrink the derived depth.
  EXPECT_GE(
      DerivePrefetchDepth(Algorithm::kNoRandomAccess, 1000, 2, 10, model, 16),
      nra4);
  // When random accesses dominate the charged cost, speculation can't pay:
  // depth collapses to 1 (pipeline only).
  CostModel pricey;
  pricey.random_unit = 1000.0;
  EXPECT_EQ(
      DerivePrefetchDepth(Algorithm::kThreshold, 1000, 2, 10, pricey, 4), 1u);
  // An inapplicable algorithm (no estimate) degrades to no prefetch.
  EXPECT_EQ(DerivePrefetchDepth(Algorithm::kAuto, 1000, 2, 10, model, 4), 0u);
}

TEST(ChoosePlanTest, MonotoneConjunctionPrefersSublinearPlans) {
  CostModel model;
  Result<PlanChoice> plan = ChoosePlan(*Conjunction2(), 100000, 10, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->algorithm, Algorithm::kNaive);
  EXPECT_EQ(plan->considered.size(), 5u);  // naive, a0, ta, nra, ca
}

TEST(ChoosePlanTest, ConsideredListsCaWithItsPeriod) {
  CostModel model;
  model.random_unit = 4.0;
  Result<PlanChoice> plan = ChoosePlan(*Conjunction2(), 100000, 10, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->combined_period, 4u);
  bool found_ca = false;
  for (const auto& [label, est] : plan->considered) {
    if (ConsideredBaseName(label) == "ca") {
      found_ca = true;
      EXPECT_EQ(label, "ca(h=4)");
      EXPECT_DOUBLE_EQ(
          est, *EstimateCost(Algorithm::kCombined, 100000, 2, 10, model));
    }
  }
  EXPECT_TRUE(found_ca);
}

TEST(ChoosePlanTest, CheapIndexDriverWinsAndExpensiveOneLoses) {
  // A low-dimensional tree whose per-release work is far cheaper than a
  // precomputed sorted access: the index-driven TA plan must win.
  CostModel cheap;
  cheap.index_driver = IndexDriverCalibration{
      .dim = 2,
      .node_accesses_per_emit = 0.05,
      .refinements_per_emit = 1.2,
      .node_unit = 0.1,
      .refine_unit = 0.01,
  };
  Result<PlanChoice> plan = ChoosePlan(*Conjunction2(), 100000, 10, cheap);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->use_index_driver);
  EXPECT_EQ(plan->algorithm, Algorithm::kThreshold);
  bool found = false;
  for (const auto& [label, est] : plan->considered) {
    if (ConsideredBaseName(label) == "rtree") {
      found = true;
      EXPECT_EQ(label, "rtree(dim=2)");
      EXPECT_DOUBLE_EQ(est, plan->estimated_cost);
    }
  }
  EXPECT_TRUE(found);

  // The curse: a high-dimensional tree expanding hundreds of nodes per
  // release prices itself out, and the plan falls back to the batch lists.
  CostModel cursed = cheap;
  cursed.index_driver->dim = 32;
  cursed.index_driver->node_accesses_per_emit = 400.0;
  cursed.index_driver->node_unit = 1.0;
  plan = ChoosePlan(*Conjunction2(), 100000, 10, cursed);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->use_index_driver);
  bool listed = false;
  for (const auto& [label, est] : plan->considered) {
    listed = listed || label == "rtree(dim=32)";
  }
  EXPECT_TRUE(listed) << "the rejected driver plan still shows in EXPLAIN";

  // Without a calibration the driver plan is not even considered.
  Result<PlanChoice> plain = ChoosePlan(*Conjunction2(), 100000, 10, {});
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->use_index_driver);
  for (const auto& [label, est] : plain->considered) {
    EXPECT_NE(ConsideredBaseName(label), "rtree");
  }
}

TEST(ChoosePlanTest, ExpensiveRandomAccessFlipsToNRA) {
  CostModel pricey;
  pricey.random_unit = 50.0;
  Result<PlanChoice> plan = ChoosePlan(*Conjunction2(), 100000, 10, pricey);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, Algorithm::kNoRandomAccess);
}

TEST(ChoosePlanTest, ExtremeRandomPriceAtTinyNFlipsToNaive) {
  // When N is small the m*N scan can beat paying for random probes.
  CostModel extreme;
  extreme.random_unit = 1000.0;
  Result<PlanChoice> plan = ChoosePlan(*Conjunction2(), 50, 10, extreme);
  ASSERT_TRUE(plan.ok());
  // NRA still wins over naive here (2*m*depth < m*N is false for k=10,
  // n=50: depth=sqrt(500)=22.4, 2*2*22.4=89.6 vs 100) — either is
  // acceptable; what matters is that no random-access plan is chosen.
  EXPECT_TRUE(plan->algorithm == Algorithm::kNaive ||
              plan->algorithm == Algorithm::kNoRandomAccess);
  EXPECT_NE(plan->algorithm, Algorithm::kFagin);
  EXPECT_NE(plan->algorithm, Algorithm::kThreshold);
}

TEST(ChoosePlanTest, MaxDisjunctionPicksShortcut) {
  QueryPtr disj =
      Query::Or({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  Result<PlanChoice> plan = ChoosePlan(*disj, 100000, 10, CostModel{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, Algorithm::kDisjunctionShortcut);
  EXPECT_DOUBLE_EQ(plan->estimated_cost, 20.0);
}

TEST(ChoosePlanTest, NonMonotoneOnlyConsidersNaive) {
  QueryPtr negated = Query::Not(Query::Atomic("A", "x"));
  Result<PlanChoice> plan = ChoosePlan(*negated, 100000, 10, CostModel{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, Algorithm::kNaive);
  EXPECT_EQ(plan->considered.size(), 1u);
}

class ExecuteOptimizedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(811);
    workload_ = IndependentUniform(&rng, 400, 2);
    Result<std::vector<VectorSource>> sources = workload_.MakeSources();
    ASSERT_TRUE(sources.ok());
    sources_ = std::move(*sources);
    resolver_ = [this](const Query& atom) -> Result<GradedSource*> {
      if (atom.attribute() == "A") return &sources_[0];
      if (atom.attribute() == "B") return &sources_[1];
      return Status::NotFound("unknown attribute");
    };
  }

  Workload workload_;
  std::vector<VectorSource> sources_;
  SourceResolver resolver_;
};

TEST_F(ExecuteOptimizedTest, RunsChosenPlanAndReportsChoice) {
  PlanChoice choice;
  Result<ExecutionResult> r =
      ExecuteOptimized(Conjunction2(), resolver_, 5, CostModel{}, &choice);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->algorithm_used, choice.algorithm);

  std::vector<GradedSource*> ptrs{&sources_[0], &sources_[1]};
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());
  if (choice.algorithm == Algorithm::kNoRandomAccess) {
    EXPECT_EQ(r->topk.items.size(), 5u);
  } else {
    EXPECT_TRUE(IsValidTopK(r->topk.items, *truth, 5));
  }
}

TEST_F(ExecuteOptimizedTest, PriceyRandomAccessSelectsNRAAndStaysCorrect) {
  CostModel pricey;
  pricey.random_unit = 50.0;
  PlanChoice choice;
  Result<ExecutionResult> r =
      ExecuteOptimized(Conjunction2(), resolver_, 5, pricey, &choice);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(choice.algorithm, Algorithm::kNoRandomAccess);
  EXPECT_EQ(r->topk.cost.random, 0u);
}

TEST_F(ExecuteOptimizedTest, RejectsBadInputs) {
  EXPECT_FALSE(ExecuteOptimized(nullptr, resolver_, 5, CostModel{}).ok());
  QueryPtr unknown = Query::Atomic("Nope", "x");
  EXPECT_FALSE(ExecuteOptimized(unknown, resolver_, 5, CostModel{}).ok());
}

}  // namespace
}  // namespace fuzzydb
