// Regression tests for top-k halting on exhausted / unequal-length sources.
//
// The fuzzy convention (source.h) says an object absent from a list has
// grade 0 there, so a short list is semantically a long one whose tail is
// all zeros. Both TA and A0 used to ignore that: TA kept an exhausted
// list's stale last grade in the threshold, and A0's Phase 1 could never
// count an object as "seen on every list" once any list dried up — both
// degenerated into a full scan of the longer lists (and A0 could not even
// certify k matches that plainly existed). These tests pin the fixed
// behavior: identical answers to the naive ground truth, with strictly
// fewer accesses than a full scan.

#include <gtest/gtest.h>

#include "middleware/fagin.h"
#include "middleware/naive.h"
#include "middleware/nra.h"
#include "middleware/threshold.h"
#include "middleware/vector_source.h"
#include "sim/experiment.h"

namespace fuzzydb {
namespace {

// A long list: ids 1..n, grades strictly descending in (0, 1).
VectorSource LongSource(size_t n) {
  std::vector<GradedObject> items;
  items.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    items.push_back({static_cast<ObjectId>(i),
                     static_cast<double>(n + 1 - i) /
                         static_cast<double>(n + 1)});
  }
  Result<VectorSource> src = VectorSource::Create(std::move(items), "long");
  EXPECT_TRUE(src.ok());
  return std::move(src).value();
}

// A short list graded over a handful of ids buried deep in the long list,
// so Phase-1 matches cannot come from the top of the long list.
VectorSource ShortDeepSource(ObjectId first, size_t count) {
  std::vector<GradedObject> items;
  for (size_t i = 0; i < count; ++i) {
    items.push_back({first + i, 0.95 - 0.01 * static_cast<double>(i)});
  }
  Result<VectorSource> src = VectorSource::Create(std::move(items), "short");
  EXPECT_TRUE(src.ok());
  return std::move(src).value();
}

constexpr size_t kN = 1000;
constexpr size_t kK = 3;

TEST(ExhaustedSourcesTest, ThresholdHaltsEarlyOnUnequalLists) {
  VectorSource a = LongSource(kN);
  VectorSource b = ShortDeepSource(/*first=*/501, /*count=*/5);
  std::vector<GradedSource*> ptrs{&a, &b};
  ScoringRulePtr rule = MinRule();

  Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
  ASSERT_TRUE(truth.ok());
  Result<TopKResult> ta = ThresholdTopK(ptrs, *rule, kK);
  ASSERT_TRUE(ta.ok());
  EXPECT_TRUE(IsValidTopK(ta->items, *truth, kK));

  // Once the short list is exhausted its threshold contribution is 0, and
  // under min the whole threshold collapses — TA must stop right there,
  // around depth 6, not at depth ~507 where the long list's grades fall
  // below the k-th best.
  const uint64_t full_scan = a.Size() + b.Size();
  EXPECT_LT(ta->cost.sorted, full_scan);
  EXPECT_LE(ta->cost.sorted, 30u);
}

TEST(ExhaustedSourcesTest, FaginHaltsEarlyOnUnequalLists) {
  VectorSource a = LongSource(kN);
  VectorSource b = ShortDeepSource(/*first=*/501, /*count=*/5);
  std::vector<GradedSource*> ptrs{&a, &b};
  ScoringRulePtr rule = MinRule();

  Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
  ASSERT_TRUE(truth.ok());
  Result<TopKResult> fagin = FaginTopK(ptrs, *rule, kK);
  ASSERT_TRUE(fagin.ok());
  EXPECT_TRUE(IsValidTopK(fagin->items, *truth, kK));

  // A0 semantics: after the short list is exhausted, every object counts as
  // seen on it (grade 0). Phase 1 then certifies k matches within a few
  // rounds instead of draining the long list for objects the short one
  // will never deliver.
  const uint64_t full_scan = a.Size() + b.Size();
  EXPECT_LT(fagin->cost.sorted, full_scan);
  EXPECT_LE(fagin->cost.sorted, 30u);
}

TEST(ExhaustedSourcesTest, AllAlgorithmsAgreeOnUnequalLists) {
  VectorSource a1 = LongSource(kN);
  VectorSource b1 = ShortDeepSource(501, 5);
  std::vector<GradedSource*> ptrs{&a1, &b1};
  ScoringRulePtr rule = MinRule();
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
  ASSERT_TRUE(truth.ok());

  Result<TopKResult> naive = NaiveTopK(ptrs, *rule, kK);
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(IsValidTopK(naive->items, *truth, kK));

  // NRA has no random access, so it must read the long list down to the
  // short list's ids — but it still terminates and certifies membership.
  Result<TopKResult> nra = NoRandomAccessTopK(ptrs, *rule, kK);
  ASSERT_TRUE(nra.ok());
  ASSERT_EQ(nra->items.size(), kK);
  std::vector<GradedObject> expected = truth->TopK(kK);
  for (const GradedObject& g : nra->items) {
    EXPECT_GE(*truth->GradeOf(g.id), expected.back().grade - 1e-12);
  }
}

TEST(ExhaustedSourcesTest, EmptySourceIsAllZeros) {
  VectorSource a = LongSource(kN);
  Result<VectorSource> empty = VectorSource::Create({}, "empty");
  ASSERT_TRUE(empty.ok());
  std::vector<GradedSource*> ptrs{&a, &*empty};
  ScoringRulePtr rule = MinRule();
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
  ASSERT_TRUE(truth.ok());

  // Under min every overall grade is 0; both algorithms must notice after a
  // couple of rounds instead of scanning all of the long list.
  Result<TopKResult> ta = ThresholdTopK(ptrs, *rule, 2);
  ASSERT_TRUE(ta.ok());
  EXPECT_TRUE(IsValidTopK(ta->items, *truth, 2));
  EXPECT_LE(ta->cost.sorted, 10u);

  Result<TopKResult> fagin = FaginTopK(ptrs, *rule, 2);
  ASSERT_TRUE(fagin.ok());
  EXPECT_TRUE(IsValidTopK(fagin->items, *truth, 2));
  EXPECT_LE(fagin->cost.sorted, 10u);
}

TEST(ExhaustedSourcesTest, AllSourcesEmptyYieldEmptyResult) {
  Result<VectorSource> e1 = VectorSource::Create({}, "e1");
  Result<VectorSource> e2 = VectorSource::Create({}, "e2");
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  std::vector<GradedSource*> ptrs{&*e1, &*e2};
  ScoringRulePtr rule = MinRule();

  Result<TopKResult> ta = ThresholdTopK(ptrs, *rule, 5);
  ASSERT_TRUE(ta.ok());
  EXPECT_TRUE(ta->items.empty());

  Result<TopKResult> fagin = FaginTopK(ptrs, *rule, 5);
  ASSERT_TRUE(fagin.ok());
  EXPECT_TRUE(fagin->items.empty());

  Result<TopKResult> nra = NoRandomAccessTopK(ptrs, *rule, 5);
  ASSERT_TRUE(nra.ok());
  EXPECT_TRUE(nra->items.empty());
}

TEST(ExhaustedSourcesTest, FaginCursorBatchesAcrossExhaustion) {
  VectorSource a = LongSource(kN);
  VectorSource b = ShortDeepSource(501, 5);
  std::vector<GradedSource*> ptrs{&a, &b};
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());

  Result<FaginCursor> cursor = FaginCursor::Create(ptrs, MinRule());
  ASSERT_TRUE(cursor.ok());
  Result<TopKResult> first = cursor->NextBatch(2);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(IsValidTopK(first->items, *truth, 2));

  Result<TopKResult> second = cursor->NextBatch(2);
  ASSERT_TRUE(second.ok());
  std::vector<GradedObject> both = first->items;
  both.insert(both.end(), second->items.begin(), second->items.end());
  EXPECT_TRUE(IsValidTopK(both, *truth, 4));

  // The short list exhausted inside the first batch; the virtual credit
  // must carry into later batches so they stay cheap too.
  const uint64_t full_scan = a.Size() + b.Size();
  EXPECT_LT(cursor->cost().sorted, full_scan);
  EXPECT_LE(cursor->cost().sorted, 60u);
}

}  // namespace
}  // namespace fuzzydb
