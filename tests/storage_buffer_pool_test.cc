// Buffer-pool tests (DESIGN §3k): counters, pinning vs the clock sweep,
// handle lifetime past Close() (the ASan-sensitive case), and the
// concurrency protocol — same-page fetch coalescing and failed-load
// recovery. Runs under TSan via the `concurrency` label.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/status.h"

namespace fuzzydb {
namespace storage {
namespace {

constexpr size_t kPage = 256;

// A fetcher over a synthetic "file": page p is filled with bytes whose
// values encode p, so any cross-wiring of frames is detectable.
BufferPool::Fetcher PatternFetcher(std::atomic<uint64_t>* fetches = nullptr) {
  return [fetches](uint64_t page, std::span<char> dest) {
    if (fetches != nullptr) fetches->fetch_add(1);
    for (size_t i = 0; i < dest.size(); ++i) {
      dest[i] = static_cast<char>((page * 31 + i) & 0xff);
    }
    return Status::OK();
  };
}

bool PageLooksRight(const PageHandle& h, uint64_t page) {
  if (!h.valid() || h.size() != kPage) return false;
  for (size_t i = 0; i < kPage; ++i) {
    if (h.data()[i] != static_cast<char>((page * 31 + i) & 0xff)) return false;
  }
  return true;
}

BufferPoolOptions SmallPool(size_t capacity) {
  BufferPoolOptions options;
  options.page_bytes = kPage;
  options.capacity_pages = capacity;
  return options;
}

TEST(BufferPoolTest, HitMissAndByteCounters) {
  BufferPool pool(SmallPool(4), PatternFetcher());
  {
    auto h = pool.Fetch(7);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_TRUE(PageLooksRight(*h, 7));
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.bytes_read_disk, kPage);

  // Released but still resident: the second fetch is a hit, zero disk.
  auto again = pool.Fetch(7);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(PageLooksRight(*again, 7));
  s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.bytes_read_disk, kPage);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(pool.resident_pages(), 1u);
}

TEST(BufferPoolTest, ClockEvictsUnpinnedPages) {
  BufferPool pool(SmallPool(2), PatternFetcher());
  // Fill both frames, release, then fault a third page: someone is evicted.
  { ASSERT_TRUE(pool.Fetch(0).ok()); }
  { ASSERT_TRUE(pool.Fetch(1).ok()); }
  auto h2 = pool.Fetch(2);
  ASSERT_TRUE(h2.ok());
  EXPECT_TRUE(PageLooksRight(*h2, 2));
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(pool.resident_pages(), 2u);
}

TEST(BufferPoolTest, PinnedPagesAreNeverEvicted) {
  BufferPool pool(SmallPool(2), PatternFetcher());
  auto pinned = pool.Fetch(10);
  ASSERT_TRUE(pinned.ok());
  // Cycle many other pages through the single remaining frame; page 10's
  // bytes must survive untouched.
  for (uint64_t p = 0; p < 20; ++p) {
    auto h = pool.Fetch(p);
    ASSERT_TRUE(h.ok()) << "page " << p << ": " << h.status().ToString();
    EXPECT_TRUE(PageLooksRight(*h, p));
  }
  EXPECT_TRUE(PageLooksRight(*pinned, 10));
  // And fetching it again while pinned is a hit, not a re-read.
  const uint64_t bytes_before = pool.stats().bytes_read_disk;
  auto again = pool.Fetch(10);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().bytes_read_disk, bytes_before);
}

TEST(BufferPoolTest, AllPinnedIsResourceExhaustedNotDeadlock) {
  BufferPool pool(SmallPool(2), PatternFetcher());
  auto a = pool.Fetch(0);
  auto b = pool.Fetch(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.Fetch(2);
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // Releasing one pin unblocks the next fetch.
  a->Release();
  auto d = pool.Fetch(2);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(PageLooksRight(*d, 2));
}

TEST(BufferPoolTest, HandleOutlivesClose) {
  // The ASan-sensitive contract: a handle's bytes stay readable after the
  // pool is closed AND destroyed, because the handle co-owns pool state.
  PageHandle survivor;
  {
    BufferPool pool(SmallPool(2), PatternFetcher());
    auto h = pool.Fetch(3);
    ASSERT_TRUE(h.ok());
    survivor = std::move(*h);
    pool.Close();
    // Fetch after Close fails cleanly.
    EXPECT_EQ(pool.Fetch(4).status().code(), StatusCode::kFailedPrecondition);
    pool.Close();  // idempotent
  }
  // Pool destroyed; the bytes must still be there.
  EXPECT_TRUE(PageLooksRight(survivor, 3));
  survivor.Release();
  EXPECT_FALSE(survivor.valid());
}

TEST(BufferPoolTest, FailedFetchPropagatesAndRetrySucceeds) {
  std::atomic<bool> fail{true};
  BufferPool pool(SmallPool(2),
                  [&fail](uint64_t page, std::span<char> dest) {
                    if (fail.load()) return Status::Internal("disk on fire");
                    return PatternFetcher()(page, dest);
                  });
  auto broken = pool.Fetch(5);
  EXPECT_EQ(broken.status().code(), StatusCode::kInternal);
  // The failed load must not leave a poisoned mapping behind.
  fail.store(false);
  auto retry = pool.Fetch(5);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(PageLooksRight(*retry, 5));
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);  // only the successful load counts as a miss
  EXPECT_EQ(s.bytes_read_disk, kPage);
}

TEST(BufferPoolTest, ConcurrentSamePageFetchLoadsOnce) {
  std::atomic<uint64_t> fetches{0};
  // A fetcher slow enough that threads genuinely overlap in the loading
  // window.
  BufferPool pool(SmallPool(4), [&fetches](uint64_t page,
                                           std::span<char> dest) {
    fetches.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return PatternFetcher()(page, dest);
  });
  constexpr int kThreads = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &ok_count] {
      auto h = pool.Fetch(9);
      if (h.ok() && PageLooksRight(*h, 9)) ok_count.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok_count.load(), kThreads);
  // Coalescing: one disk read regardless of the racing fetchers.
  EXPECT_EQ(fetches.load(), 1u);
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(BufferPoolTest, ConcurrentMixedWorkloadIsCoherent) {
  std::atomic<uint64_t> fetches{0};
  BufferPool pool(SmallPool(8), PatternFetcher(&fetches));
  constexpr int kThreads = 4;
  constexpr uint64_t kPages = 32;
  constexpr int kIters = 300;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures, t] {
      uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(t + 1);
      for (int i = 0; i < kIters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const uint64_t page = x % kPages;
        auto h = pool.Fetch(page);
        // ResourceExhausted is impossible here: 4 pins vs 8 frames.
        if (!h.ok() || !PageLooksRight(*h, page)) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(s.misses, fetches.load());
  EXPECT_EQ(s.bytes_read_disk, fetches.load() * kPage);
  EXPECT_LE(pool.resident_pages(), 8u);
}

TEST(BufferPoolTest, CloseRacingFetchesShutsDownCleanly) {
  BufferPool pool(SmallPool(4), [](uint64_t page, std::span<char> dest) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return PatternFetcher()(page, dest);
  });
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&pool, t] {
      for (uint64_t p = 0; p < 16; ++p) {
        auto h = pool.Fetch(p + static_cast<uint64_t>(t) * 16);
        if (h.ok()) {
          // Either a real page or a clean FailedPrecondition; both fine.
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool.Close();
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.Fetch(0).status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace storage
}  // namespace fuzzydb
