// Tests for the A0-as-a-join operator (paper §4.2).

#include "middleware/join.h"

#include <gtest/gtest.h>

#include "middleware/cost.h"
#include "middleware/naive.h"
#include "middleware/threshold.h"
#include "sim/experiment.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

TEST(TopKJoinTest, CreateValidates) {
  Result<VectorSource> a = VectorSource::Create({{1, 0.5}});
  Result<VectorSource> b = VectorSource::Create({{1, 0.6}, {2, 0.1}});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(TopKJoinSource::Create(nullptr, &*b).ok());
  EXPECT_FALSE(TopKJoinSource::Create(&*a, nullptr).ok());
  EXPECT_FALSE(TopKJoinSource::Create(&*a, &*b).ok());  // size mismatch
  ScoringRulePtr bad = UserDefinedRule(
      "antitone", [](std::span<const double> s) { return 1.0 - s[0]; },
      false, false);
  Result<VectorSource> a2 = VectorSource::Create({{1, 0.5}, {2, 0.2}});
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(TopKJoinSource::Create(&*a2, &*b, bad).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TopKJoinTest, StreamsTheExactOverallRanking) {
  Rng rng(881);
  Workload w = IndependentUniform(&rng, 250, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());
  std::vector<GradedObject> expected = truth->Sorted();

  Result<TopKJoinSource> join =
      TopKJoinSource::Create(ptrs[0], ptrs[1], MinRule());
  ASSERT_TRUE(join.ok());
  for (size_t i = 0; i < expected.size(); ++i) {
    std::optional<GradedObject> next = join->NextSorted();
    ASSERT_TRUE(next.has_value()) << "position " << i;
    EXPECT_EQ(next->id, expected[i].id) << "position " << i;
    EXPECT_NEAR(next->grade, expected[i].grade, 1e-12);
  }
  EXPECT_FALSE(join->NextSorted().has_value());
}

TEST(TopKJoinTest, LazyPullsTouchOnlyAPrefix) {
  // Asking for the top item must not stream the whole inputs.
  Rng rng(883);
  Workload w = IndependentUniform(&rng, 20000, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  AccessCost cost;
  CountingSource left(&(*sources)[0], &cost);
  CountingSource right(&(*sources)[1], &cost);
  Result<TopKJoinSource> join =
      TopKJoinSource::Create(&left, &right, MinRule());
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(join->NextSorted().has_value());
  EXPECT_LT(cost.total(), 4000u) << "joined lazily, not exhaustively";
}

TEST(TopKJoinTest, RandomAccessCombinesGrades) {
  Result<VectorSource> a = VectorSource::Create({{1, 0.5}, {2, 0.9}});
  Result<VectorSource> b = VectorSource::Create({{1, 0.7}, {2, 0.3}});
  ASSERT_TRUE(a.ok() && b.ok());
  Result<TopKJoinSource> join = TopKJoinSource::Create(&*a, &*b, MinRule());
  ASSERT_TRUE(join.ok());
  EXPECT_DOUBLE_EQ(join->RandomAccess(1), 0.5);
  EXPECT_DOUBLE_EQ(join->RandomAccess(2), 0.3);
  EXPECT_DOUBLE_EQ(join->RandomAccess(99), 0.0);
}

TEST(TopKJoinTest, RestartReplaysTheStream) {
  Rng rng(887);
  Workload w = IndependentUniform(&rng, 50, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<TopKJoinSource> join =
      TopKJoinSource::Create(ptrs[0], ptrs[1], MinRule());
  ASSERT_TRUE(join.ok());
  std::vector<ObjectId> first_pass;
  while (auto next = join->NextSorted()) first_pass.push_back(next->id);
  join->RestartSorted();
  std::vector<ObjectId> second_pass;
  while (auto next = join->NextSorted()) second_pass.push_back(next->id);
  EXPECT_EQ(first_pass, second_pass);
}

TEST(TopKJoinTest, AtLeastMatchesThresholdSemantics) {
  Rng rng(907);
  Workload w = IndependentUniform(&rng, 120, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<TopKJoinSource> join =
      TopKJoinSource::Create(ptrs[0], ptrs[1], MinRule());
  ASSERT_TRUE(join.ok());
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());
  std::vector<GradedObject> expected = truth->AtLeast(0.6);
  std::vector<GradedObject> got = join->AtLeast(0.6);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id);
  }
}

TEST(TopKJoinTest, JoinsComposeIntoPipelines) {
  // join(join(A, B), C) under min == 3-ary min over (A, B, C).
  Rng rng(911);
  Workload w = IndependentUniform(&rng, 200, 3);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);

  Result<TopKJoinSource> inner =
      TopKJoinSource::Create(ptrs[0], ptrs[1], MinRule(), "A*B");
  ASSERT_TRUE(inner.ok());
  Result<TopKJoinSource> outer =
      TopKJoinSource::Create(&*inner, ptrs[2], MinRule(), "(A*B)*C");
  ASSERT_TRUE(outer.ok());

  // Computing the ground truth streams the shared inputs to exhaustion, so
  // rewind the pipeline (RestartSorted cascades to the inputs).
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());
  outer->RestartSorted();
  std::vector<GradedObject> expected = truth->Sorted();
  for (size_t i = 0; i < 20; ++i) {
    std::optional<GradedObject> next = outer->NextSorted();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->id, expected[i].id) << "position " << i;
    EXPECT_NEAR(next->grade, expected[i].grade, 1e-12);
  }
}

TEST(TopKJoinTest, JoinFeedsOtherAlgorithmsAsAPlainSource) {
  // A join output can be one input of TA — operators all the way down.
  Rng rng(919);
  Workload w = IndependentUniform(&rng, 150, 3);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<TopKJoinSource> join =
      TopKJoinSource::Create(ptrs[0], ptrs[1], MinRule());
  ASSERT_TRUE(join.ok());
  join->RestartSorted();

  std::vector<GradedSource*> two{&*join, ptrs[2]};
  Result<TopKResult> top = ThresholdTopK(two, *MinRule(), 5);
  ASSERT_TRUE(top.ok());
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(IsValidTopK(top->items, *truth, 5));
}

}  // namespace
}  // namespace fuzzydb
