// Runtime behavior of the capability-annotated sync layer (common/sync.h).
// The compile-time contract is gated elsewhere — -Wthread-safety on Clang
// builds plus the tests/thread_safety/ compile-fail harness — so this file
// pins down the wrapper semantics every compiler must honor: mutual
// exclusion, TryLock, mid-scope Unlock/Lock, and CondVar wakeups.

#include "common/sync.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace fuzzydb {
namespace {

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SyncTest, TryLockRefusesWhileHeldAndAcquiresWhenFree) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, MutexLockMidScopeUnlockReleasesTheMutex) {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  // Another thread can take the mutex during the released window.
  bool acquired = false;
  std::thread other([&] {
    MutexLock inner(mu);
    acquired = true;
  });
  other.join();
  EXPECT_TRUE(acquired);
  lock.Lock();  // reacquire so the destructor releases a held lock
}

TEST(SyncTest, CondVarWaitObservesNotifiedState) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu, lock);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(SyncTest, CondVarNotifyOneWakesAWaiter) {
  Mutex mu;
  CondVar cv;
  int budget = 0;
  int consumed = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (budget == 0) cv.Wait(mu, lock);
      --budget;
      ++consumed;
    });
  }
  for (int t = 0; t < kWaiters; ++t) {
    {
      MutexLock lock(mu);
      ++budget;
    }
    cv.NotifyOne();
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(consumed, kWaiters);
  EXPECT_EQ(budget, 0);
}

}  // namespace
}  // namespace fuzzydb
