// Theorem 3.1 machinery (paper §3): min/max preserve grades across
// logically equivalent queries; other t-norm pairs do not (though all of
// them agree with propositional logic on 0/1 grades — conservation).

#include "core/equivalence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

namespace fuzzydb {
namespace {

// Oracle assigning every (attribute) a fixed random grade per object;
// unseen attributes (e.g. fresh atoms from absorption) get deterministic
// pseudo-random grades derived from the attribute name.
GradeOracle RandomOracle(uint64_t seed) {
  auto cache = std::make_shared<std::unordered_map<std::string, double>>();
  return [seed, cache](const Query& atom, ObjectId id) {
    std::string key = atom.attribute() + "#" + std::to_string(id);
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
    uint64_t h = seed;
    for (char c : key) h = h * 1099511628211ULL + static_cast<uint8_t>(c);
    double g = static_cast<double>(h >> 11) * 0x1.0p-53;
    cache->emplace(std::move(key), g);
    return g;
  };
}

// 0/1 oracle: the propositional restriction.
GradeOracle BooleanOracle(uint64_t seed) {
  GradeOracle real = RandomOracle(seed);
  return [real](const Query& atom, ObjectId id) {
    return real(atom, id) < 0.5 ? 0.0 : 1.0;
  };
}

TEST(RandomMonotoneQueryTest, ProducesValidMonotoneTrees) {
  Rng rng(1001);
  for (int i = 0; i < 50; ++i) {
    QueryPtr q = RandomMonotoneQuery(&rng, {"A", "B", "C"}, 3);
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(q->IsMonotone());
    EXPECT_GE(q->NumAtoms(), 1u);
    GradeOracle oracle = RandomOracle(7);
    double g = q->Grade(oracle, 1);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
  }
}

TEST(RewriteEquivalentTest, MinMaxPreserveGradesAcrossRewrites) {
  // Paper §3: "if Q1 and Q2 are logically equivalent queries involving only
  // conjunction and disjunction, then µ_Q1(x) = µ_Q2(x) for every x."
  Rng rng(1003);
  for (int trial = 0; trial < 60; ++trial) {
    QueryPtr original = RandomMonotoneQuery(&rng, {"A", "B", "C", "D"}, 3);
    QueryPtr rewritten = RewriteEquivalent(original, &rng, 5);
    GradeOracle oracle = RandomOracle(1000 + trial);
    for (ObjectId id = 1; id <= 10; ++id) {
      EXPECT_NEAR(original->Grade(oracle, id), rewritten->Grade(oracle, id),
                  1e-12)
          << "trial " << trial << " object " << id << "\n  "
          << original->ToString() << "\n  " << rewritten->ToString();
    }
  }
}

TEST(RewriteEquivalentTest, ProductRuleBreaksEquivalence) {
  // Theorem 3.1's uniqueness: a non-min conjunction rule cannot preserve
  // equivalence. Under product, A and A∧A differ whenever 0 < µ_A < 1.
  QueryPtr atom = Query::Atomic("A", "t");
  Rng rng(1007);
  ScoringRulePtr product = TNormRule(TNormKind::kProduct);
  ScoringRulePtr prob_sum = TCoNormRule(TCoNormKind::kProbSum);
  bool diverged = false;
  for (int trial = 0; trial < 40 && !diverged; ++trial) {
    QueryPtr rewritten =
        RewriteEquivalent(atom, &rng, 3, product, prob_sum);
    GradeOracle oracle = RandomOracle(2000 + trial);
    for (ObjectId id = 1; id <= 5; ++id) {
      if (std::fabs(atom->Grade(oracle, id) - rewritten->Grade(oracle, id)) >
          1e-6) {
        diverged = true;
      }
    }
  }
  EXPECT_TRUE(diverged)
      << "product/prob-sum unexpectedly preserved equivalence";
}

TEST(RewriteEquivalentTest, IdempotenceIsTheMinimalCounterexample) {
  // Explicit witness: µ_{A∧A} = µ_A under min but µ_A^2 under product.
  QueryPtr atom = Query::Atomic("A", "t");
  QueryPtr dup_min = Query::And({atom, atom}, MinRule());
  QueryPtr dup_prod = Query::And({atom, atom}, TNormRule(TNormKind::kProduct));
  GradeOracle half = [](const Query&, ObjectId) { return 0.5; };
  EXPECT_DOUBLE_EQ(dup_min->Grade(half, 1), 0.5);
  EXPECT_DOUBLE_EQ(dup_prod->Grade(half, 1), 0.25);
}

class ConservationTest : public ::testing::TestWithParam<TNormKind> {};

TEST_P(ConservationTest, AllTNormsAgreeWithBooleanLogicOnCrispGrades) {
  // Paper §3: the rules "are a conservative extension of the standard
  // propositional semantics" — on 0/1 grades every t-norm/co-norm pair
  // computes the same value as min/max.
  Rng rng(1013 + static_cast<uint64_t>(GetParam()));
  ScoringRulePtr t = TNormRule(GetParam());
  ScoringRulePtr s = TCoNormRule(DualCoNorm(GetParam()));
  for (int trial = 0; trial < 30; ++trial) {
    QueryPtr standard = RandomMonotoneQuery(&rng, {"A", "B", "C"}, 3);
    QueryPtr exotic = WithRules(standard, t, s);
    GradeOracle oracle = BooleanOracle(3000 + trial);
    for (ObjectId id = 1; id <= 10; ++id) {
      EXPECT_DOUBLE_EQ(standard->Grade(oracle, id),
                       exotic->Grade(oracle, id))
          << TNormName(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTNorms, ConservationTest,
                         ::testing::Values(TNormKind::kProduct,
                                           TNormKind::kLukasiewicz,
                                           TNormKind::kHamacher,
                                           TNormKind::kEinstein,
                                           TNormKind::kDrastic),
                         [](const auto& info) {
                           return TNormName(info.param);
                         });

TEST(WithRulesTest, PreservesStructure) {
  QueryPtr q = Query::And(
      {Query::Atomic("A", "x"),
       Query::Or({Query::Atomic("B", "y"), Query::Atomic("C", "z")})});
  QueryPtr rebuilt =
      WithRules(q, TNormRule(TNormKind::kProduct),
                TCoNormRule(TCoNormKind::kProbSum));
  EXPECT_EQ(rebuilt->kind(), Query::Kind::kAnd);
  EXPECT_EQ(rebuilt->NumAtoms(), 3u);
  EXPECT_EQ(rebuilt->rule()->name(), "product");
  EXPECT_EQ(rebuilt->children()[1]->rule()->name(), "prob-sum");
}

}  // namespace
}  // namespace fuzzydb
