#include "image/shape.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace fuzzydb {
namespace {

TEST(PolygonTest, CreateValidatesAndNormalizesOrientation) {
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 0}}).ok());
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 0}, {2, 0}}).ok());  // collinear
  // Clockwise input is reversed to CCW (positive area).
  Result<Polygon> cw = Polygon::Create({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  ASSERT_TRUE(cw.ok());
  EXPECT_GT(cw->Area(), 0.0);
}

TEST(PolygonTest, SquareGeometry) {
  Polygon sq = *Polygon::Create({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(sq.Area(), 4.0);
  EXPECT_DOUBLE_EQ(sq.PerimeterLength(), 8.0);
  Point2 c = sq.Centroid();
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(PolygonTest, RegularPolygonAreaConvergesToCircle) {
  // Area of a regular n-gon with circumradius 1 -> pi as n grows.
  Polygon p = Polygon::Regular(256);
  EXPECT_NEAR(p.Area(), std::numbers::pi, 1e-2);
  EXPECT_NEAR(p.PerimeterLength(), 2.0 * std::numbers::pi, 1e-2);
}

TEST(PolygonTest, TransformsBehave) {
  Polygon sq = *Polygon::Create({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_NEAR(sq.Translated(5, -2).Area(), sq.Area(), 1e-12);
  EXPECT_NEAR(sq.Scaled(3.0).Area(), 9.0 * sq.Area(), 1e-12);
  EXPECT_NEAR(sq.Rotated(0.7).Area(), sq.Area(), 1e-12);
  Point2 c = sq.Translated(5, -2).Centroid();
  EXPECT_NEAR(c.x, 5.5, 1e-12);
  EXPECT_NEAR(c.y, -1.5, 1e-12);
}

TEST(PolygonTest, RandomStarIsValidAndBounded) {
  Rng rng(479);
  for (int i = 0; i < 30; ++i) {
    Polygon star = Polygon::RandomStar(&rng, 3 + i % 10, 0.5, 1.5);
    EXPECT_GT(star.Area(), 0.0);
    for (const Point2& v : star.vertices()) {
      EXPECT_LE(std::hypot(v.x, v.y), 1.5 + 1e-12);
      EXPECT_GE(std::hypot(v.x, v.y), 0.5 - 1e-12);
    }
  }
}

TEST(HuMomentsTest, InvariantUnderTranslationRotationAndScale) {
  Rng rng(487);
  for (int trial = 0; trial < 10; ++trial) {
    Polygon shape = Polygon::RandomStar(&rng, 9);
    HuMoments base = ComputeHuMoments(shape);
    HuMoments translated = ComputeHuMoments(shape.Translated(3.7, -1.2));
    HuMoments rotated = ComputeHuMoments(shape.Rotated(1.1));
    HuMoments scaled = ComputeHuMoments(shape.Scaled(2.5));
    for (size_t i = 0; i < 7; ++i) {
      EXPECT_NEAR(translated[i], base[i], 1e-8) << "translate, moment " << i;
      EXPECT_NEAR(rotated[i], base[i], 1e-8) << "rotate, moment " << i;
      EXPECT_NEAR(scaled[i], base[i], 1e-8) << "scale, moment " << i;
    }
  }
}

TEST(HuMomentsTest, FirstMomentOfKnownShapes) {
  // For a disk, I1 = η20 + η02 = 1/(2π) ≈ 0.159; the 64-gon approximates it.
  HuMoments disk = ComputeHuMoments(Polygon::Regular(64));
  EXPECT_NEAR(disk[0], 1.0 / (2.0 * std::numbers::pi), 1e-3);
  // For a square, I1 = 1/6.
  HuMoments square =
      ComputeHuMoments(*Polygon::Create({{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
  EXPECT_NEAR(square[0], 1.0 / 6.0, 1e-12);
}

TEST(HuMomentDistanceTest, DiscriminatesShapes) {
  HuMoments square =
      ComputeHuMoments(*Polygon::Create({{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
  HuMoments thin_rect =
      ComputeHuMoments(*Polygon::Create({{0, 0}, {8, 0}, {8, 1}, {0, 1}}));
  HuMoments rotated_square = ComputeHuMoments(
      Polygon::Create({{0, 0}, {1, 0}, {1, 1}, {0, 1}})->Rotated(0.9));
  EXPECT_LT(HuMomentDistance(square, rotated_square), 1e-6);
  EXPECT_GT(HuMomentDistance(square, thin_rect), 0.1);
}

TEST(TurningFunctionTest, SquareHasQuarterTurns) {
  Polygon sq = *Polygon::Create({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  std::vector<double> tf = TurningFunction(sq, 64);
  ASSERT_EQ(tf.size(), 64u);
  // Values must be multiples of pi/2 and non-decreasing for a convex CCW
  // polygon.
  for (size_t i = 0; i < tf.size(); ++i) {
    double quarter = tf[i] / (std::numbers::pi / 2.0);
    EXPECT_NEAR(quarter, std::round(quarter), 1e-9);
    if (i > 0) {
      EXPECT_GE(tf[i], tf[i - 1] - 1e-12);
    }
  }
  // Total turning over the traversed samples spans 3 quarter turns (the
  // final quarter closes the loop after the last sample).
  EXPECT_NEAR(tf.back() - tf.front(), 3.0 * std::numbers::pi / 2.0, 1e-9);
}

TEST(TurningDistanceTest, InvariantUnderRotationAndScale) {
  Rng rng(491);
  for (int trial = 0; trial < 10; ++trial) {
    Polygon shape = Polygon::RandomStar(&rng, 8);
    std::vector<double> base = TurningFunction(shape, 64);
    std::vector<double> rotated = TurningFunction(shape.Rotated(0.8), 64);
    std::vector<double> scaled = TurningFunction(shape.Scaled(3.0), 64);
    EXPECT_NEAR(TurningDistance(base, rotated), 0.0, 1e-9);
    EXPECT_NEAR(TurningDistance(base, scaled), 0.0, 1e-9);
  }
}

TEST(TurningDistanceTest, DiscriminatesShapeFamilies) {
  std::vector<double> tri = TurningFunction(Polygon::Regular(3), 64);
  std::vector<double> hex = TurningFunction(Polygon::Regular(6), 64);
  std::vector<double> tri2 =
      TurningFunction(Polygon::Regular(3, 2.5).Rotated(1.0), 64);
  EXPECT_LT(TurningDistance(tri, tri2), 1e-9);
  EXPECT_GT(TurningDistance(tri, hex), 0.1);
}

TEST(SampleBoundaryTest, PointsLieOnThePolygonBoundary) {
  Polygon sq = *Polygon::Create({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  std::vector<Point2> pts = SampleBoundary(sq, 40);
  ASSERT_EQ(pts.size(), 40u);
  for (const Point2& p : pts) {
    // On the unit square's boundary: one coordinate is 0 or 2.
    bool on_edge = std::fabs(p.x) < 1e-9 || std::fabs(p.x - 2.0) < 1e-9 ||
                   std::fabs(p.y) < 1e-9 || std::fabs(p.y - 2.0) < 1e-9;
    EXPECT_TRUE(on_edge) << "(" << p.x << "," << p.y << ")";
  }
  // Equal arc spacing: 10 points per side of the square.
  EXPECT_NEAR(pts[0].x, 0.0, 1e-12);
  EXPECT_NEAR(pts[0].y, 0.0, 1e-12);
}

TEST(HausdorffTest, MetricBasicsOnPointSets) {
  std::vector<Point2> a{{0, 0}, {1, 0}};
  std::vector<Point2> b{{0, 0}, {1, 0}, {0, 3}};
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), HausdorffDistance(b, a));
  // The far point {0,3} dominates: its nearest in `a` is {0,0} at 3.
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), 3.0);
}

TEST(HausdorffShapeDistanceTest, TranslationInvariantOnly) {
  Rng rng(1409);
  Polygon shape = Polygon::RandomStar(&rng, 8);
  EXPECT_NEAR(HausdorffShapeDistance(shape, shape.Translated(7, -3)), 0.0,
              1e-9);
  // Scaling changes it (unlike turning functions).
  EXPECT_GT(HausdorffShapeDistance(shape, shape.Scaled(2.0)), 0.1);
  // Similar shapes are closer than dissimilar ones.
  Polygon near_copy = shape.Translated(0.01, 0.0);
  Polygon other = Polygon::RandomStar(&rng, 8);
  EXPECT_LE(HausdorffShapeDistance(shape, near_copy),
            HausdorffShapeDistance(shape, other));
}

TEST(ShapeGradeTest, MapsDistanceToUnitInterval) {
  EXPECT_DOUBLE_EQ(ShapeGradeFromDistance(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ShapeGradeFromDistance(1.0), 0.5);
  EXPECT_GT(ShapeGradeFromDistance(0.1), ShapeGradeFromDistance(0.2));
  EXPECT_GT(ShapeGradeFromDistance(100.0), 0.0);
}

}  // namespace
}  // namespace fuzzydb
