#include "common/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace fuzzydb {
namespace {

TEST(MatrixTest, IdentityBasics) {
  Matrix m = Matrix::Identity(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_TRUE(m.IsSymmetric());
  std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_EQ(m.Mul(x), x);
  EXPECT_DOUBLE_EQ(m.QuadraticForm(x), 14.0);
}

TEST(MatrixTest, SymmetryDetection) {
  Matrix m(2, 2);
  m.At(0, 1) = 1.0;
  EXPECT_FALSE(m.IsSymmetric());
  m.At(1, 0) = 1.0;
  EXPECT_TRUE(m.IsSymmetric());
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());
}

TEST(MatrixTest, QuadraticFormMatchesManual) {
  Matrix m(2, 2);
  m.At(0, 0) = 2.0;
  m.At(0, 1) = 1.0;
  m.At(1, 0) = 1.0;
  m.At(1, 1) = 3.0;
  std::vector<double> x{1.0, -1.0};
  // 2*1 + 1*(-1) + 1*(-1) + 3*1 = 3.
  EXPECT_DOUBLE_EQ(m.QuadraticForm(x), 3.0);
}

TEST(JacobiTest, DiagonalMatrixReturnsSortedDiagonal) {
  Matrix m(3, 3);
  m.At(0, 0) = 1.0;
  m.At(1, 1) = 5.0;
  m.At(2, 2) = 3.0;
  Result<EigenDecomposition> e = JacobiEigenSymmetric(m);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NEAR(e->values[0], 5.0, 1e-10);
  EXPECT_NEAR(e->values[1], 3.0, 1e-10);
  EXPECT_NEAR(e->values[2], 1.0, 1e-10);
}

TEST(JacobiTest, Known2x2Eigenvalues) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m.At(0, 0) = 2.0;
  m.At(0, 1) = 1.0;
  m.At(1, 0) = 1.0;
  m.At(1, 1) = 2.0;
  Result<EigenDecomposition> e = JacobiEigenSymmetric(m);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->values[0], 3.0, 1e-10);
  EXPECT_NEAR(e->values[1], 1.0, 1e-10);
}

TEST(JacobiTest, RejectsNonSquareAndNonSymmetric) {
  EXPECT_FALSE(JacobiEigenSymmetric(Matrix(2, 3)).ok());
  Matrix m(2, 2);
  m.At(0, 1) = 1.0;  // not mirrored
  EXPECT_FALSE(JacobiEigenSymmetric(m).ok());
}

TEST(JacobiTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(31);
  const size_t n = 8;
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.NextGaussian();
      m.At(i, j) = v;
      m.At(j, i) = v;
    }
  }
  Result<EigenDecomposition> e = JacobiEigenSymmetric(m);
  ASSERT_TRUE(e.ok());
  // Check A v_i = λ_i v_i for every eigenpair.
  for (size_t i = 0; i < n; ++i) {
    std::span<const double> v = e->vectors.Row(i);
    std::vector<double> av = m.Mul(v);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(av[j], e->values[i] * v[j], 1e-8);
    }
  }
}

TEST(JacobiTest, EigenvectorsAreOrthonormal) {
  Rng rng(37);
  const size_t n = 6;
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.NextDouble();
      m.At(i, j) = v;
      m.At(j, i) = v;
    }
  }
  Result<EigenDecomposition> e = JacobiEigenSymmetric(m);
  ASSERT_TRUE(e.ok());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double dot = Dot(e->vectors.Row(i), e->vectors.Row(j));
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(VectorOpsTest, NormDotDistance) {
  std::vector<double> a{3.0, 4.0};
  std::vector<double> b{0.0, 0.0};
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

}  // namespace
}  // namespace fuzzydb
