#include "relational/value.h"

#include <gtest/gtest.h>

#include "relational/predicate.h"
#include "relational/schema.h"

namespace fuzzydb {
namespace {

TEST(ValueTest, TypesAndGetters) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("hi")).type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("hi")).AsString(), "hi");
}

TEST(ValueTest, CompareSameType) {
  EXPECT_EQ(*Value(int64_t{1}).Compare(Value(int64_t{2})), -1);
  EXPECT_EQ(*Value(int64_t{2}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(*Value(3.5).Compare(Value(1.0)), 1);
  EXPECT_EQ(*Value(std::string("a")).Compare(Value(std::string("b"))), -1);
}

TEST(ValueTest, CompareNullOrdering) {
  EXPECT_EQ(*Value().Compare(Value()), 0);
  EXPECT_EQ(*Value().Compare(Value(int64_t{1})), -1);
  EXPECT_EQ(*Value(int64_t{1}).Compare(Value()), 1);
}

TEST(ValueTest, CrossTypeComparisonErrors) {
  Result<int> r = Value(int64_t{1}).Compare(Value(1.0));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("x")).ToString(), "'x'");
}

TEST(SchemaTest, CreateValidates) {
  EXPECT_FALSE(Schema::Create({}).ok());
  EXPECT_FALSE(Schema::Create({{"a", ValueType::kNull}}).ok());
  EXPECT_FALSE(Schema::Create({{"a", ValueType::kInt64},
                               {"a", ValueType::kString}})
                   .ok());
  Result<Schema> s = Schema::Create(
      {{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_columns(), 2u);
  EXPECT_EQ(*s->IndexOf("b"), 1u);
  EXPECT_FALSE(s->IndexOf("zz").ok());
}

TEST(SchemaTest, ValidateRowChecksArityAndTypes) {
  Schema s = *Schema::Create(
      {{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_TRUE(s.ValidateRow({Value(int64_t{1}), Value(std::string("x"))}).ok());
  EXPECT_TRUE(s.ValidateRow({Value(), Value()}).ok());  // NULLs allowed
  EXPECT_FALSE(s.ValidateRow({Value(int64_t{1})}).ok());
  EXPECT_FALSE(
      s.ValidateRow({Value(std::string("x")), Value(std::string("y"))}).ok());
}

TEST(PredicateTest, CreateBindsAndTypeChecks) {
  Schema s = *Schema::Create(
      {{"age", ValueType::kInt64}, {"name", ValueType::kString}});
  EXPECT_TRUE(
      Predicate::Create(s, "age", CompareOp::kGe, Value(int64_t{18})).ok());
  EXPECT_FALSE(Predicate::Create(s, "zz", CompareOp::kEq,
                                 Value(int64_t{1}))
                   .ok());
  EXPECT_FALSE(
      Predicate::Create(s, "age", CompareOp::kEq, Value(std::string("x")))
          .ok());
  EXPECT_FALSE(Predicate::Create(s, "age", CompareOp::kEq, Value()).ok());
}

TEST(PredicateTest, EvalAllOperators) {
  Schema s = *Schema::Create({{"x", ValueType::kInt64}});
  std::vector<Value> row{Value(int64_t{5})};
  auto eval = [&](CompareOp op, int64_t lit) {
    return Predicate::Create(s, "x", op, Value(lit))->Eval(row);
  };
  EXPECT_TRUE(eval(CompareOp::kEq, 5));
  EXPECT_FALSE(eval(CompareOp::kEq, 6));
  EXPECT_TRUE(eval(CompareOp::kNe, 6));
  EXPECT_TRUE(eval(CompareOp::kLt, 6));
  EXPECT_FALSE(eval(CompareOp::kLt, 5));
  EXPECT_TRUE(eval(CompareOp::kLe, 5));
  EXPECT_TRUE(eval(CompareOp::kGt, 4));
  EXPECT_TRUE(eval(CompareOp::kGe, 5));
  EXPECT_FALSE(eval(CompareOp::kGe, 6));
}

TEST(PredicateTest, NullColumnValueIsFalse) {
  Schema s = *Schema::Create({{"x", ValueType::kInt64}});
  Predicate p =
      *Predicate::Create(s, "x", CompareOp::kEq, Value(int64_t{5}));
  EXPECT_FALSE(p.Eval({Value()}));
  Predicate ne =
      *Predicate::Create(s, "x", CompareOp::kNe, Value(int64_t{5}));
  EXPECT_FALSE(ne.Eval({Value()}));  // SQL unknown, not true
}

TEST(PredicateTest, ToStringMatchesRunningExample) {
  Schema s = *Schema::Create({{"Artist", ValueType::kString}});
  Predicate p = *Predicate::Create(s, "Artist", CompareOp::kEq,
                                   Value(std::string("Beatles")));
  EXPECT_EQ(p.ToString(), "Artist='Beatles'");
}

}  // namespace
}  // namespace fuzzydb
