#include "core/tnorms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace fuzzydb {
namespace {

class TNormAxiomsTest : public ::testing::TestWithParam<TNormKind> {};

TEST_P(TNormAxiomsTest, SatisfiesAllTNormAxioms) {
  TNormKind kind = GetParam();
  BinaryScoringFn t = [kind](double x, double y) {
    return ApplyTNorm(kind, x, y);
  };
  EXPECT_TRUE(ValidateTNormAxioms(t).ok()) << TNormName(kind);
}

TEST_P(TNormAxiomsTest, BoundedByMin) {
  // Every t-norm satisfies t(x,y) <= min(x,y).
  TNormKind kind = GetParam();
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble(), y = rng.NextDouble();
    EXPECT_LE(ApplyTNorm(kind, x, y), std::min(x, y) + 1e-12)
        << TNormName(kind);
  }
}

TEST_P(TNormAxiomsTest, DualCoNormSatisfiesCoNormAxioms) {
  TCoNormKind dual = DualCoNorm(GetParam());
  BinaryScoringFn s = [dual](double x, double y) {
    return ApplyTCoNorm(dual, x, y);
  };
  EXPECT_TRUE(ValidateTCoNormAxioms(s).ok()) << TCoNormName(dual);
}

TEST_P(TNormAxiomsTest, DeMorganDualityUnderStandardNegation) {
  // s(x,y) = 1 - t(1-x, 1-y) must equal the named dual co-norm [Al85, BD86].
  TNormKind kind = GetParam();
  TCoNormKind dual = DualCoNorm(kind);
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) {
    double x = rng.NextDouble(), y = rng.NextDouble();
    double via_dual = 1.0 - ApplyTNorm(kind, 1.0 - x, 1.0 - y);
    EXPECT_NEAR(via_dual, ApplyTCoNorm(dual, x, y), 1e-12) << TNormName(kind);
  }
}

TEST_P(TNormAxiomsTest, DualRoundTrips) {
  EXPECT_EQ(DualTNorm(DualCoNorm(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllTNorms, TNormAxiomsTest,
                         ::testing::Values(TNormKind::kMinimum,
                                           TNormKind::kProduct,
                                           TNormKind::kLukasiewicz,
                                           TNormKind::kHamacher,
                                           TNormKind::kEinstein,
                                           TNormKind::kDrastic),
                         [](const auto& info) {
                           return TNormName(info.param);
                         });

class TCoNormBoundTest : public ::testing::TestWithParam<TCoNormKind> {};

TEST_P(TCoNormBoundTest, BoundedBelowByMax) {
  // Every t-co-norm satisfies s(x,y) >= max(x,y).
  TCoNormKind kind = GetParam();
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble(), y = rng.NextDouble();
    EXPECT_GE(ApplyTCoNorm(kind, x, y), std::max(x, y) - 1e-12)
        << TCoNormName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCoNorms, TCoNormBoundTest,
                         ::testing::Values(TCoNormKind::kMaximum,
                                           TCoNormKind::kProbSum,
                                           TCoNormKind::kLukasiewicz,
                                           TCoNormKind::kHamacher,
                                           TCoNormKind::kEinstein,
                                           TCoNormKind::kDrastic),
                         [](const auto& info) {
                           std::string name = TCoNormName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(TNormValuesTest, SpotChecks) {
  EXPECT_DOUBLE_EQ(ApplyTNorm(TNormKind::kMinimum, 0.3, 0.7), 0.3);
  EXPECT_DOUBLE_EQ(ApplyTNorm(TNormKind::kProduct, 0.5, 0.4), 0.2);
  EXPECT_DOUBLE_EQ(ApplyTNorm(TNormKind::kLukasiewicz, 0.5, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(ApplyTNorm(TNormKind::kLukasiewicz, 0.8, 0.7), 0.5);
  EXPECT_DOUBLE_EQ(ApplyTNorm(TNormKind::kDrastic, 0.9, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(ApplyTNorm(TNormKind::kDrastic, 1.0, 0.9), 0.9);
  EXPECT_DOUBLE_EQ(ApplyTCoNorm(TCoNormKind::kProbSum, 0.5, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(ApplyTCoNorm(TCoNormKind::kLukasiewicz, 0.8, 0.7), 1.0);
}

TEST(TNormValuesTest, HamacherHandlesZeroZero) {
  EXPECT_DOUBLE_EQ(ApplyTNorm(TNormKind::kHamacher, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ApplyTCoNorm(TCoNormKind::kHamacher, 1.0, 1.0), 1.0);
}

TEST(NegationTest, StandardAndFamilies) {
  EXPECT_DOUBLE_EQ(StandardNegation(0.3), 0.7);
  // Sugeno with lambda = 0 is standard.
  NegationFn sugeno0 = SugenoNegation(0.0);
  NegationFn yager1 = YagerNegation(1.0);
  Rng rng(53);
  for (int i = 0; i < 500; ++i) {
    double x = rng.NextDouble();
    EXPECT_NEAR(sugeno0(x), 1.0 - x, 1e-12);
    EXPECT_NEAR(yager1(x), 1.0 - x, 1e-12);
  }
  // All negations are involutive at the endpoints and order-reversing.
  for (double lambda : {-0.5, 0.0, 1.0, 4.0}) {
    NegationFn n = SugenoNegation(lambda);
    EXPECT_NEAR(n(0.0), 1.0, 1e-12);
    EXPECT_NEAR(n(1.0), 0.0, 1e-12);
    EXPECT_GT(n(0.2), n(0.8));
    // Sugeno negations are involutions: n(n(x)) == x.
    for (double x : {0.1, 0.4, 0.9}) {
      EXPECT_NEAR(n(n(x)), x, 1e-12);
    }
  }
}

TEST(DeMorganDualTest, BuildsCoNormFromTNorm) {
  BinaryScoringFn t = [](double x, double y) {
    return ApplyTNorm(TNormKind::kProduct, x, y);
  };
  BinaryScoringFn s = DeMorganDual(t, [](double x) { return 1.0 - x; });
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble(), y = rng.NextDouble();
    EXPECT_NEAR(s(x, y), x + y - x * y, 1e-12);
  }
}

TEST(ValidateAxiomsTest, CatchesViolations) {
  // Arithmetic mean is not a t-norm: fails ∧-conservation (paper §3 notes
  // avg(0, 1) = 1/2 rather than 0).
  BinaryScoringFn avg = [](double x, double y) { return (x + y) / 2.0; };
  Status s = ValidateTNormAxioms(avg);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);

  // A non-commutative function fails.
  BinaryScoringFn first = [](double x, double y) { return x * (y + 1) / 2; };
  EXPECT_FALSE(ValidateTNormAxioms(first).ok());

  // A non-monotone function fails.
  BinaryScoringFn hump = [](double x, double y) {
    return std::min(std::min(x, y), 1.0 - std::min(x, y));
  };
  EXPECT_FALSE(ValidateTNormAxioms(hump).ok());

  EXPECT_FALSE(ValidateTNormAxioms(avg, 1).ok());  // bad grid
}

}  // namespace
}  // namespace fuzzydb
