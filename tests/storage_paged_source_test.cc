// PagedColorSource tests (DESIGN §3k): the out-of-core collection seen
// through the middleware's eyes. The load-bearing claim is that a color
// source graded through the buffer pool is indistinguishable from
// QbicColorSource over the same rows — same sorted stream, bit-equal
// grades, same TA/NRA/CA answers — and that the query server's
// data_version probe invalidates cached results when the backing file's
// generation changes.

#include "storage/paged_source.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/source_audit.h"
#include "image/qbic_source.h"
#include "middleware/combined.h"
#include "middleware/fagin.h"
#include "middleware/naive.h"
#include "middleware/nra.h"
#include "middleware/threshold.h"
#include "server/query_server.h"
#include "storage/ingest.h"
#include "storage/paged_store.h"

namespace fuzzydb {
namespace storage {
namespace {

class PagedSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImageStoreOptions options;
    options.num_images = 120;
    options.palette_size = 16;
    options.seed = 77;
    options.tune_cascade = false;
    Result<ImageStore> ram = ImageStore::Generate(options);
    ASSERT_TRUE(ram.ok()) << ram.status().ToString();
    ram_ = std::make_unique<ImageStore>(std::move(*ram));

    path_ = ::testing::TempDir() + "paged_source.fzdb";
    ColumnFileOptions file_options;
    file_options.page_bytes = 4096;
    file_options.store_version = 1;
    Result<IngestedCollection> ingested =
        IngestGeneratedCollection(options, path_, file_options);
    ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();

    PagedStoreOptions store_options;
    store_options.pool_bytes = 8 * 4096;  // smaller than the file: pages
    Result<std::unique_ptr<PagedEmbeddingStore>> paged =
        PagedEmbeddingStore::Open(path_, store_options);
    ASSERT_TRUE(paged.ok()) << paged.status().ToString();
    paged_ = std::move(*paged);
  }

  void TearDown() override {
    paged_.reset();
    std::remove(path_.c_str());
  }

  // Ids of the generated records (first_id = 1, so row i is object i + 1).
  std::vector<ObjectId> RecordIds() const {
    std::vector<ObjectId> ids;
    ids.reserve(ram_->size());
    for (size_t i = 0; i < ram_->size(); ++i) ids.push_back(ram_->image(i).id);
    return ids;
  }

  Result<PagedColorSource> MakePaged(const Histogram& target,
                                     std::string label = "Color(paged)") {
    return PagedColorSource::Create(
        paged_.get(), ram_->color_distance().Embed(target),
        ram_->color_distance().MaxDistance(), std::move(label), RecordIds());
  }

  std::unique_ptr<ImageStore> ram_;
  std::unique_ptr<PagedEmbeddingStore> paged_;
  std::string path_;
};

TEST_F(PagedSourceTest, EquivalentToQbicColorSource) {
  const Histogram target = TargetHistogram(ram_->palette(), {1.0, 0.2, 0.1});
  Result<QbicColorSource> reference =
      QbicColorSource::Create(ram_.get(), target);
  Result<PagedColorSource> paged = MakePaged(target);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  AuditReport report = AuditSourceEquivalence(&*paged, &*reference);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(PagedSourceTest, SelfQueryRanksTheQueryImageFirst) {
  const ImageRecord& probe = ram_->image(31);
  Result<PagedColorSource> src = MakePaged(probe.histogram);
  ASSERT_TRUE(src.ok());
  std::optional<GradedObject> top = src->NextSorted();
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->id, probe.id);
  EXPECT_NEAR(top->grade, 1.0, 1e-9);
}

TEST_F(PagedSourceTest, IdentityIdModeServesTheSortedContract) {
  // No ids: row i is object i, grades live in a flat array — the mode that
  // scales to out-of-core N. The access contract must hold regardless.
  const Histogram target = TargetHistogram(ram_->palette(), {0.3, 1.0, 0.3});
  Result<PagedColorSource> src = PagedColorSource::Create(
      paged_.get(), ram_->color_distance().Embed(target),
      ram_->color_distance().MaxDistance());
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  EXPECT_EQ(src->Size(), ram_->size());
  AuditReport report = AuditSortedAccess(&*src);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // Out-of-range random access is the conventional "absent" grade 0.
  EXPECT_EQ(src->RandomAccess(ram_->size() + 10), 0.0);
}

TEST_F(PagedSourceTest, MiddlewareAnswersMatchTheRamBackend) {
  // (Color ~ red) AND (Shape ~ round), color served from disk vs RAM, the
  // shape leg shared. Every algorithm must produce the same valid top-k.
  const Histogram red = TargetHistogram(ram_->palette(), {1.0, 0.1, 0.1});
  const Polygon round = Polygon::Regular(24);
  Result<QbicColorSource> ram_color = QbicColorSource::Create(ram_.get(), red);
  Result<PagedColorSource> disk_color = MakePaged(red);
  Result<QbicShapeSource> shape = QbicShapeSource::Create(ram_.get(), round);
  ASSERT_TRUE(ram_color.ok() && disk_color.ok() && shape.ok());

  ScoringRulePtr min = MinRule();
  std::vector<GradedSource*> ram_sources{&*ram_color, &*shape};
  Result<GradedSet> truth = NaiveAllGrades(ram_sources, *min);
  ASSERT_TRUE(truth.ok());

  const size_t k = 10;
  struct Algo {
    const char* name;
    std::function<Result<TopKResult>(std::span<GradedSource* const>)> run;
  };
  const std::vector<Algo> algos = {
      {"fagin", [&](std::span<GradedSource* const> s) {
         return FaginTopK(s, *min, k);
       }},
      {"ta", [&](std::span<GradedSource* const> s) {
         return ThresholdTopK(s, *min, k);
       }},
      {"nra", [&](std::span<GradedSource* const> s) {
         return NoRandomAccessTopK(s, *min, k);
       }},
      {"ca", [&](std::span<GradedSource* const> s) {
         return CombinedTopK(s, *min, k);
       }},
  };
  for (const Algo& algo : algos) {
    SCOPED_TRACE(algo.name);
    std::vector<GradedSource*> disk_sources{&*disk_color, &*shape};
    for (GradedSource* s : disk_sources) s->RestartSorted();
    Result<TopKResult> disk_top = algo.run(disk_sources);
    ASSERT_TRUE(disk_top.ok()) << disk_top.status().ToString();
    EXPECT_TRUE(IsValidTopK(disk_top->items, *truth, k));

    std::vector<GradedSource*> ram_run{&*ram_color, &*shape};
    for (GradedSource* s : ram_run) s->RestartSorted();
    Result<TopKResult> ram_top = algo.run(ram_run);
    ASSERT_TRUE(ram_top.ok());
    // Same sources semantically → identical items, grades, and costs.
    ASSERT_EQ(disk_top->items.size(), ram_top->items.size());
    for (size_t i = 0; i < ram_top->items.size(); ++i) {
      EXPECT_EQ(disk_top->items[i].id, ram_top->items[i].id) << "rank " << i;
      EXPECT_EQ(disk_top->items[i].grade, ram_top->items[i].grade)
          << "rank " << i;
    }
    EXPECT_EQ(disk_top->cost.sorted, ram_top->cost.sorted);
    EXPECT_EQ(disk_top->cost.random, ram_top->cost.random);
  }
}

TEST_F(PagedSourceTest, ServerDataVersionProbeInvalidatesCache) {
  const Histogram red = TargetHistogram(ram_->palette(), {1.0, 0.1, 0.1});
  Result<PagedColorSource> color = MakePaged(red);
  ASSERT_TRUE(color.ok());
  PagedColorSource* raw = &*color;
  SourceResolver resolver = [raw](const Query& atom) -> Result<GradedSource*> {
    if (atom.attribute() == "Color") return raw;
    return Status::NotFound("unknown attribute " + atom.attribute());
  };

  // Simulates the backing file's generation stamp (in production:
  // PagedEmbeddingStore::version(), bumped by re-ingest).
  std::atomic<uint64_t> generation{1};
  QueryServerOptions options;
  options.data_version = [&generation] { return generation.load(); };
  QueryServer server(options);  // no pool: inline, synchronous execution

  auto submit = [&] {
    Result<Submission> sub =
        server.Submit(Query::Atomic("Color", "red"), 5, resolver);
    EXPECT_TRUE(sub.ok()) << sub.status().ToString();
    raw->RestartSorted();
    return sub;
  };

  submit();                // computes and caches
  submit();                // cache hit
  EXPECT_EQ(server.stats().served_from_cache, 1u);

  generation.store(2);     // the collection was re-ingested
  submit();                // must recompute: the cache was invalidated
  EXPECT_EQ(server.stats().served_from_cache, 1u);
  submit();                // and the fresh result caches again
  EXPECT_EQ(server.stats().served_from_cache, 2u);
}

}  // namespace
}  // namespace storage
}  // namespace fuzzydb
