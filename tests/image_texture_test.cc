#include "image/texture.h"

#include <gtest/gtest.h>

#include <numbers>

#include "image/image_store.h"
#include "image/qbic_source.h"

namespace fuzzydb {
namespace {

TexturePatch Make(const TextureParams& params, uint64_t seed = 900) {
  Rng rng(seed);
  Result<TexturePatch> p = SynthesizeTexture(params, 32, &rng);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(SynthesizeTextureTest, ValidatesAndStaysInRange) {
  Rng rng(901);
  EXPECT_FALSE(SynthesizeTexture(TextureParams{}, 4, &rng).ok());
  EXPECT_FALSE(SynthesizeTexture(TextureParams{}, 32, nullptr).ok());
  TexturePatch p = Make(TextureParams{});
  EXPECT_EQ(p.pixels.size(), 32u * 32u);
  for (double v : p.pixels) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ComputeTextureFeaturesTest, ValidatesInput) {
  TexturePatch bad;
  bad.side = 32;
  bad.pixels.resize(10);
  EXPECT_FALSE(ComputeTextureFeatures(bad).ok());
  bad.side = 4;
  bad.pixels.resize(16);
  EXPECT_FALSE(ComputeTextureFeatures(bad).ok());
}

TEST(ComputeTextureFeaturesTest, FeaturesInUnitRange) {
  Rng rng(907);
  for (int i = 0; i < 20; ++i) {
    TexturePatch p = Make(RandomTextureParams(&rng), 907 + i);
    Result<TextureFeatures> f = ComputeTextureFeatures(p);
    ASSERT_TRUE(f.ok());
    EXPECT_GE(f->coarseness, 0.0);
    EXPECT_LE(f->coarseness, 1.0);
    EXPECT_GE(f->contrast, 0.0);
    EXPECT_LE(f->contrast, 1.0);
    EXPECT_GE(f->directionality, 0.0);
    EXPECT_LE(f->directionality, 1.0);
  }
}

TEST(ComputeTextureFeaturesTest, ContrastTracksAmplitude) {
  TextureParams lo, hi;
  lo.amplitude = 0.1;
  hi.amplitude = 0.9;
  lo.noise = hi.noise = 0.0;
  TextureFeatures flo = *ComputeTextureFeatures(Make(lo));
  TextureFeatures fhi = *ComputeTextureFeatures(Make(hi));
  EXPECT_GT(fhi.contrast, flo.contrast + 0.1);
}

TEST(ComputeTextureFeaturesTest, CoarsenessTracksFrequency) {
  TextureParams coarse, fine;
  coarse.frequency = 1.5;
  fine.frequency = 14.0;
  coarse.noise = fine.noise = 0.0;
  TextureFeatures fc = *ComputeTextureFeatures(Make(coarse));
  TextureFeatures ff = *ComputeTextureFeatures(Make(fine));
  EXPECT_GT(fc.coarseness, ff.coarseness);
}

TEST(ComputeTextureFeaturesTest, NoiseDestroysDirectionality) {
  TextureParams clean, noisy;
  clean.noise = 0.0;
  noisy.noise = 1.0;
  noisy.amplitude = 0.05;  // barely any grating left
  TextureFeatures f_clean = *ComputeTextureFeatures(Make(clean));
  TextureFeatures f_noisy = *ComputeTextureFeatures(Make(noisy));
  EXPECT_GT(f_clean.directionality, 0.5);
  EXPECT_LT(f_noisy.directionality, f_clean.directionality);
}

TEST(ComputeTextureFeaturesTest, FlatPatchIsFeaturelessAndSafe) {
  TexturePatch flat;
  flat.side = 16;
  flat.pixels.assign(256, 0.5);
  Result<TextureFeatures> f = ComputeTextureFeatures(flat);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->contrast, 0.0);
  EXPECT_DOUBLE_EQ(f->directionality, 0.0);
}

TEST(TextureDistanceTest, MetricBasics) {
  Rng rng(911);
  TextureFeatures a = *ComputeTextureFeatures(Make(RandomTextureParams(&rng)));
  TextureFeatures b =
      *ComputeTextureFeatures(Make(RandomTextureParams(&rng), 912));
  EXPECT_DOUBLE_EQ(TextureDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(TextureDistance(a, b), TextureDistance(b, a));
  EXPECT_GE(TextureDistance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(TextureGradeFromDistance(0.0), 1.0);
  EXPECT_LT(TextureGradeFromDistance(1.0), 1.0);
}

TEST(QbicTextureSourceTest, GradesSortedAndConsistent) {
  ImageStoreOptions options;
  options.num_images = 50;
  options.palette_size = 8;
  options.seed = 33;
  Result<ImageStore> store = ImageStore::Generate(options);
  ASSERT_TRUE(store.ok());
  TextureFeatures target = store->image(7).texture;
  Result<QbicTextureSource> src =
      QbicTextureSource::Create(&*store, target, "Texture~probe");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->Size(), 50u);

  // The probe image itself must rank first with grade 1.
  std::optional<GradedObject> top = src->NextSorted();
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->id, store->image(7).id);
  EXPECT_DOUBLE_EQ(top->grade, 1.0);

  double prev = 1.1;
  src->RestartSorted();
  while (auto next = src->NextSorted()) {
    EXPECT_LE(next->grade, prev + 1e-12);
    EXPECT_DOUBLE_EQ(src->RandomAccess(next->id), next->grade);
    prev = next->grade;
  }
  EXPECT_FALSE(QbicTextureSource::Create(nullptr, target).ok());
}

TEST(QbicTextureSourceTest, StoreGeneratesDiverseTextures) {
  ImageStoreOptions options;
  options.num_images = 40;
  options.palette_size = 8;
  options.seed = 37;
  Result<ImageStore> store = ImageStore::Generate(options);
  ASSERT_TRUE(store.ok());
  // Features must not all be identical across images.
  bool diverse = false;
  for (size_t i = 1; i < store->size(); ++i) {
    if (TextureDistance(store->image(0).texture, store->image(i).texture) >
        0.05) {
      diverse = true;
      break;
    }
  }
  EXPECT_TRUE(diverse);
}

}  // namespace
}  // namespace fuzzydb
