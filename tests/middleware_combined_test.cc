#include "middleware/combined.h"

#include <gtest/gtest.h>

#include "middleware/naive.h"
#include "middleware/nra.h"
#include "middleware/threshold.h"
#include "sim/experiment.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

TEST(CombinedTest, ValidatesArguments) {
  Rng rng(1103);
  Workload w = IndependentUniform(&rng, 50, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  EXPECT_FALSE(CombinedTopK(ptrs, *MinRule(), 5, 0).ok());
  EXPECT_FALSE(CombinedTopK(ptrs, *MinRule(), 0, 1).ok());
  ScoringRulePtr bad = UserDefinedRule(
      "antitone", [](std::span<const double> s) { return 1.0 - s[0]; },
      false, false);
  EXPECT_EQ(CombinedTopK(ptrs, *bad, 5, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

class CombinedPeriodTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CombinedPeriodTest, CorrectTopKSetAtEveryPeriod) {
  const size_t h = GetParam();
  for (uint64_t seed : {1u, 2u}) {
    Rng rng(1109 + seed);
    Workload w = IndependentUniform(&rng, 400, 2);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
    ASSERT_TRUE(truth.ok());
    Result<TopKResult> r = CombinedTopK(ptrs, *MinRule(), 10, h);
    ASSERT_TRUE(r.ok());
    std::vector<GradedObject> expected = truth->TopK(10);
    ASSERT_EQ(r->items.size(), expected.size());
    double kth = expected.back().grade;
    for (const GradedObject& g : r->items) {
      EXPECT_GE(*truth->GradeOf(g.id), kth - 1e-12)
          << "h=" << h << " seed=" << seed;
      // Reported grades never exceed the truth (lower bounds or exact).
      EXPECT_LE(g.grade, *truth->GradeOf(g.id) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, CombinedPeriodTest,
                         ::testing::Values(1, 2, 8, 64, 100000),
                         [](const auto& info) {
                           // Built via append rather than operator+(const
                           // char*, string&&): gcc 12's -Wrestrict misfires
                           // on the inlined insert path of the latter.
                           std::string name = "h";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(CombinedTest, RandomAccessDecreasesWithPeriod) {
  Rng rng(1117);
  Workload w = IndependentUniform(&rng, 5000, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  uint64_t prev_random = UINT64_MAX;
  for (size_t h : {1u, 8u, 64u, 1000000u}) {
    Result<TopKResult> r = CombinedTopK(ptrs, *MinRule(), 10, h);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->cost.random, prev_random) << "h=" << h;
    prev_random = r->cost.random;
  }
  // At huge h, CA must do (almost) no random access, like NRA.
  Result<TopKResult> ca_inf = CombinedTopK(ptrs, *MinRule(), 10, 1000000);
  ASSERT_TRUE(ca_inf.ok());
  EXPECT_LE(ca_inf->cost.random, 2u * 10u);
  Result<TopKResult> nra = NoRandomAccessTopK(ptrs, *MinRule(), 10);
  ASSERT_TRUE(nra.ok());
  // Same sorted-depth ballpark as NRA.
  EXPECT_LE(ca_inf->cost.sorted, nra->cost.sorted * 2);
}

TEST(CombinedTest, TruncatedAndEmptySourcesGetVirtualCredit) {
  // Exhausted lists contribute last_seen = 0 to the upper bounds (the
  // Fagin virtual-credit rule TA and NRA already apply), so CA halts
  // instead of spinning, and still certifies a correct top-k of whatever
  // objects exist — including the all-but-one-empty and all-empty cases.
  Rng rng(1129);
  Workload w = IndependentUniform(&rng, 200, 3);
  for (const std::vector<size_t>& lengths :
       {std::vector<size_t>{200, 30, 0}, std::vector<size_t>{200, 0, 0},
        std::vector<size_t>{0, 0, 0}}) {
    Result<std::vector<VectorSource>> sources =
        MakeTruncatedSources(w, lengths);
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
    ASSERT_TRUE(truth.ok());
    for (size_t h : {1u, 2u, 64u}) {
      Result<TopKResult> r = CombinedTopK(ptrs, *MinRule(), 10, h);
      ASSERT_TRUE(r.ok()) << "h=" << h;
      std::vector<GradedObject> expected = truth->TopK(10);
      ASSERT_EQ(r->items.size(), expected.size()) << "h=" << h;
      if (!expected.empty()) {
        double kth = expected.back().grade;
        for (const GradedObject& g : r->items) {
          EXPECT_GE(*truth->GradeOf(g.id), kth - 1e-12) << "h=" << h;
        }
      }
    }
  }
}

TEST(CombinedTest, SmallPeriodCanTerminateEarlierThanNRA) {
  // Resolving blockers with random access lets CA stop at a shallower
  // sorted depth than pure NRA on at least some instances.
  Rng rng(1123);
  Workload w = AntiCorrelated(&rng, 3000, 0.05);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<TopKResult> ca = CombinedTopK(ptrs, *MinRule(), 10, 1);
  Result<TopKResult> nra = NoRandomAccessTopK(ptrs, *MinRule(), 10);
  ASSERT_TRUE(ca.ok() && nra.ok());
  EXPECT_LE(ca->cost.sorted, nra->cost.sorted);
}

}  // namespace
}  // namespace fuzzydb
