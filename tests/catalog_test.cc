#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "catalog/id_mapping.h"
#include "common/random.h"
#include "middleware/fagin.h"
#include "middleware/naive.h"
#include "middleware/vector_source.h"

namespace fuzzydb {
namespace {

TEST(IdMappingTest, EnforcesBijection) {
  IdMapping map;
  ASSERT_TRUE(map.Add(1, 100).ok());
  ASSERT_TRUE(map.Add(2, 200).ok());
  EXPECT_EQ(map.size(), 2u);
  // One-to-one on both sides (the Garlic requirement, §4.2).
  EXPECT_EQ(map.Add(1, 300).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(map.Add(3, 100).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(*map.ToGlobal(1), 100u);
  EXPECT_EQ(*map.ToLocal(200), 2u);
  EXPECT_FALSE(map.ToGlobal(9).ok());
  EXPECT_FALSE(map.ToLocal(9).ok());
}

TEST(MappedSourceTest, RewritesIdsAtTheInterface) {
  // Subsystem with local ids 1..3; middleware knows them as 100*local.
  Result<VectorSource> inner =
      VectorSource::Create({{1, 0.9}, {2, 0.5}, {3, 0.1}});
  ASSERT_TRUE(inner.ok());
  IdMapping map;
  ASSERT_TRUE(map.Add(1, 100).ok());
  ASSERT_TRUE(map.Add(2, 200).ok());
  ASSERT_TRUE(map.Add(3, 300).ok());
  MappedSource mapped(&*inner, &map);
  EXPECT_EQ(mapped.Size(), 3u);

  std::optional<GradedObject> top = mapped.NextSorted();
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->id, 100u);
  EXPECT_DOUBLE_EQ(top->grade, 0.9);

  EXPECT_DOUBLE_EQ(mapped.RandomAccess(200), 0.5);
  EXPECT_DOUBLE_EQ(mapped.RandomAccess(2), 0.0);  // local id is meaningless

  std::vector<GradedObject> hits = mapped.AtLeast(0.4);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 100u);
  EXPECT_EQ(hits[1].id, 200u);
}

TEST(MappedSourceTest, SkipsUnmappedObjectsUnderSortedAccess) {
  Result<VectorSource> inner =
      VectorSource::Create({{1, 0.9}, {2, 0.5}, {3, 0.1}});
  ASSERT_TRUE(inner.ok());
  IdMapping map;
  ASSERT_TRUE(map.Add(1, 100).ok());
  ASSERT_TRUE(map.Add(3, 300).ok());  // local 2 is unknown to the middleware
  MappedSource mapped(&*inner, &map);
  std::vector<ObjectId> stream;
  while (auto next = mapped.NextSorted()) stream.push_back(next->id);
  EXPECT_EQ(stream, (std::vector<ObjectId>{100, 300}));
}

TEST(MappedSourceTest, FaginRunsAcrossDifferentlyKeyedSubsystems) {
  // The full §4.2 scenario: two subsystems with their own id spaces, a
  // validated one-to-one mapping each, and A0 running on global ids only.
  Rng rng(1501);
  const size_t n = 200;
  std::vector<GradedObject> local_a, local_b;
  IdMapping map_a, map_b;
  std::vector<ObjectId> ids;
  std::vector<std::vector<double>> columns(2, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    ObjectId global = 1 + i;
    ObjectId a_id = 77000 + i * 3;  // subsystem A's private ids
    ObjectId b_id = 5000000 - i;    // subsystem B counts down
    double ga = rng.NextDouble();
    double gb = rng.NextDouble();
    local_a.push_back({a_id, ga});
    local_b.push_back({b_id, gb});
    ASSERT_TRUE(map_a.Add(a_id, global).ok());
    ASSERT_TRUE(map_b.Add(b_id, global).ok());
    ids.push_back(global);
    columns[0][i] = ga;
    columns[1][i] = gb;
  }
  Result<VectorSource> src_a = VectorSource::Create(std::move(local_a));
  Result<VectorSource> src_b = VectorSource::Create(std::move(local_b));
  ASSERT_TRUE(src_a.ok() && src_b.ok());
  MappedSource mapped_a(&*src_a, &map_a);
  MappedSource mapped_b(&*src_b, &map_b);

  // Ground truth computed directly on global ids.
  Result<std::vector<VectorSource>> global_sources =
      MakeSources(ids, columns);
  ASSERT_TRUE(global_sources.ok());
  std::vector<GradedSource*> truth_ptrs;
  for (VectorSource& s : *global_sources) truth_ptrs.push_back(&s);
  Result<GradedSet> truth = NaiveAllGrades(truth_ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());

  std::vector<GradedSource*> mapped{&mapped_a, &mapped_b};
  Result<TopKResult> top = FaginTopK(mapped, *MinRule(), 10);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_TRUE(IsValidTopK(top->items, *truth, 10));
}

TEST(CatalogTest, RegisterSourceAndResolve) {
  Catalog catalog;
  auto src = std::make_unique<VectorSource>(
      *VectorSource::Create({{1, 0.8}, {2, 0.4}}));
  GradedSource* raw = src.get();
  ASSERT_TRUE(catalog.RegisterSource("Color", "red", std::move(src)).ok());
  Result<GradedSource*> resolved = catalog.Resolve("Color", "red");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, raw);
  // Unknown target for a source-only attribute is NotFound.
  EXPECT_FALSE(catalog.Resolve("Color", "blue").ok());
  EXPECT_FALSE(catalog.Resolve("Nope", "x").ok());
  // Duplicate registration rejected.
  auto dup = std::make_unique<VectorSource>(
      *VectorSource::Create({{1, 0.8}}));
  EXPECT_EQ(
      catalog.RegisterSource("Color", "red", std::move(dup)).code(),
      StatusCode::kAlreadyExists);
}

TEST(CatalogTest, FactoryBuildsAndCachesPerTarget) {
  Catalog catalog;
  int builds = 0;
  ASSERT_TRUE(catalog
                  .RegisterAttribute(
                      "Color",
                      [&builds](const std::string& target)
                          -> Result<std::unique_ptr<GradedSource>> {
                        ++builds;
                        double g = target == "red" ? 0.9 : 0.1;
                        std::unique_ptr<GradedSource> src =
                            std::make_unique<VectorSource>(
                                *VectorSource::Create({{1, g}}));
                        return src;
                      })
                  .ok());
  Result<GradedSource*> red1 = catalog.Resolve("Color", "red");
  Result<GradedSource*> red2 = catalog.Resolve("Color", "red");
  Result<GradedSource*> blue = catalog.Resolve("Color", "blue");
  ASSERT_TRUE(red1.ok() && red2.ok() && blue.ok());
  EXPECT_EQ(*red1, *red2);  // cached
  EXPECT_NE(*red1, *blue);
  EXPECT_EQ(builds, 2);
  EXPECT_DOUBLE_EQ((*red1)->RandomAccess(1), 0.9);

  EXPECT_EQ(catalog.RegisterAttribute("Color", nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(catalog
                .RegisterAttribute("Color",
                                   [](const std::string&)
                                       -> Result<std::unique_ptr<GradedSource>> {
                                     return Status::NotFound("x");
                                   })
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, AttributesAreSorted) {
  Catalog catalog;
  auto factory = [](const std::string&)
      -> Result<std::unique_ptr<GradedSource>> {
    return Status::NotFound("unused");
  };
  ASSERT_TRUE(catalog.RegisterAttribute("Shape", factory).ok());
  ASSERT_TRUE(catalog.RegisterAttribute("Artist", factory).ok());
  ASSERT_TRUE(catalog.RegisterAttribute("Color", factory).ok());
  EXPECT_EQ(catalog.Attributes(),
            (std::vector<std::string>{"Artist", "Color", "Shape"}));
}

TEST(CatalogTest, AsResolverAdaptsAtomicQueries) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterSource("Color", "red",
                                  std::make_unique<VectorSource>(
                                      *VectorSource::Create({{1, 0.8}})))
                  .ok());
  SourceResolver resolver = catalog.AsResolver();
  QueryPtr atom = Query::Atomic("Color", "red");
  Result<GradedSource*> src = resolver(*atom);
  ASSERT_TRUE(src.ok());
  EXPECT_DOUBLE_EQ((*src)->RandomAccess(1), 0.8);
}

}  // namespace
}  // namespace fuzzydb
