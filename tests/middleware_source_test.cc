#include <gtest/gtest.h>

#include "middleware/cost.h"
#include "middleware/vector_source.h"

namespace fuzzydb {
namespace {

TEST(VectorSourceTest, CreateValidates) {
  EXPECT_FALSE(VectorSource::Create({{1, 0.5}, {1, 0.6}}).ok());
  EXPECT_FALSE(VectorSource::Create({{1, 1.5}}).ok());
  EXPECT_FALSE(VectorSource::Create({{1, -0.1}}).ok());
  EXPECT_TRUE(VectorSource::Create({}).ok());  // empty source is legal
}

TEST(VectorSourceTest, SortedAccessStreamsDescending) {
  Result<VectorSource> src =
      VectorSource::Create({{1, 0.2}, {2, 0.9}, {3, 0.5}, {4, 0.9}});
  ASSERT_TRUE(src.ok());
  std::vector<ObjectId> order;
  while (auto next = src->NextSorted()) order.push_back(next->id);
  EXPECT_EQ(order, (std::vector<ObjectId>{2, 4, 3, 1}));
  EXPECT_FALSE(src->NextSorted().has_value());
  src->RestartSorted();
  EXPECT_EQ(src->NextSorted()->id, 2u);
}

TEST(VectorSourceTest, RandomAccessAndUnknownIds) {
  Result<VectorSource> src = VectorSource::Create({{1, 0.2}, {2, 0.9}});
  ASSERT_TRUE(src.ok());
  EXPECT_DOUBLE_EQ(src->RandomAccess(2), 0.9);
  EXPECT_DOUBLE_EQ(src->RandomAccess(42), 0.0);  // absent -> grade 0
}

TEST(VectorSourceTest, AtLeastReturnsPrefix) {
  Result<VectorSource> src =
      VectorSource::Create({{1, 0.2}, {2, 0.9}, {3, 0.5}});
  ASSERT_TRUE(src.ok());
  std::vector<GradedObject> hits = src->AtLeast(0.5);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 2u);
  EXPECT_EQ(hits[1].id, 3u);
  EXPECT_EQ(src->AtLeast(0.0).size(), 3u);
  EXPECT_TRUE(src->AtLeast(0.95).empty());
}

TEST(CountingSourceTest, ChargesEveryAccessMode) {
  Result<VectorSource> src =
      VectorSource::Create({{1, 0.2}, {2, 0.9}, {3, 0.5}});
  ASSERT_TRUE(src.ok());
  AccessCost cost;
  CountingSource counted(&*src, &cost);

  EXPECT_TRUE(counted.NextSorted().has_value());
  EXPECT_TRUE(counted.NextSorted().has_value());
  EXPECT_EQ(cost.sorted, 2u);

  counted.RandomAccess(1);
  counted.RandomAccess(42);
  EXPECT_EQ(cost.random, 2u);

  // Filter access charges one sorted access per returned object (CG96).
  counted.AtLeast(0.5);
  EXPECT_EQ(cost.sorted, 4u);

  // Exhausted sorted access is not charged.
  counted.RestartSorted();
  for (int i = 0; i < 10; ++i) counted.NextSorted();
  EXPECT_EQ(cost.sorted, 7u);
  EXPECT_EQ(cost.total(), 9u);
}

TEST(AccessCostTest, ChargedModelWeighsRandomAccesses) {
  AccessCost cost;
  cost.sorted = 10;
  cost.random = 4;
  EXPECT_EQ(cost.total(), 14u);
  EXPECT_DOUBLE_EQ(cost.Charged(1.0), 14.0);
  EXPECT_DOUBLE_EQ(cost.Charged(0.5), 12.0);
  EXPECT_DOUBLE_EQ(cost.Charged(10.0), 50.0);
  AccessCost other;
  other.sorted = 1;
  other.random = 2;
  cost += other;
  EXPECT_EQ(cost.sorted, 11u);
  EXPECT_EQ(cost.random, 6u);
}

TEST(MakeSourcesTest, BuildsOneSourcePerColumn) {
  std::vector<ObjectId> ids{10, 20, 30};
  std::vector<std::vector<double>> cols{{0.1, 0.2, 0.3}, {0.9, 0.8, 0.7}};
  Result<std::vector<VectorSource>> sources = MakeSources(ids, cols);
  ASSERT_TRUE(sources.ok());
  ASSERT_EQ(sources->size(), 2u);
  EXPECT_DOUBLE_EQ((*sources)[0].RandomAccess(30), 0.3);
  EXPECT_DOUBLE_EQ((*sources)[1].RandomAccess(10), 0.9);
  EXPECT_EQ((*sources)[0].NextSorted()->id, 30u);

  EXPECT_FALSE(MakeSources(ids, {{0.1}}).ok());  // size mismatch
}

}  // namespace
}  // namespace fuzzydb
