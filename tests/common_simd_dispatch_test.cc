// The dispatch contract of the int8 block-SSD kernels: every kernel the
// host can run must produce *bit-identical* int32 block sums to the
// portable scalar kernel — the accumulations are exact integer arithmetic,
// so equality is required, not approximate. Levels beyond Detect() cannot
// be exercised here (the instructions would fault); the CI matrix covers
// them by forcing FUZZYDB_SIMD across hosts.

#include "common/simd_dispatch.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace fuzzydb {
namespace {

std::vector<int8_t> RandomCodes(Rng* rng, size_t n) {
  std::vector<int8_t> codes(n);
  for (int8_t& c : codes) {
    c = static_cast<int8_t>(
        rng->NextInt(-simd::kInt8CodeMax, simd::kInt8CodeMax));
  }
  return codes;
}

std::vector<simd::Level> SupportedLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::Detect() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  if (simd::Detect() >= simd::Level::kAvx512Vnni) {
    levels.push_back(simd::Level::kAvx512Vnni);
  }
  return levels;
}

TEST(SimdDispatchTest, EveryRunnableKernelMatchesScalarBitForBit) {
  Rng rng(515);
  // Sizes hit the paired-block main loop and the odd trailing block.
  for (size_t blocks : {1u, 2u, 3u, 4u, 7u, 64u}) {
    const size_t n = blocks * simd::kBlockDim;
    for (int rep = 0; rep < 25; ++rep) {
      const std::vector<int8_t> x = RandomCodes(&rng, n);
      const std::vector<int8_t> y = RandomCodes(&rng, n);
      std::vector<int32_t> want(blocks);
      simd::ResolveBlockSsd(simd::Level::kScalar)(x.data(), y.data(), n,
                                                  want.data());
      for (simd::Level level : SupportedLevels()) {
        std::vector<int32_t> got(blocks, -1);
        simd::ResolveBlockSsd(level)(x.data(), y.data(), n, got.data());
        for (size_t b = 0; b < blocks; ++b) {
          ASSERT_EQ(got[b], want[b])
              << simd::Name(level) << " blocks=" << blocks << " block=" << b;
        }
      }
    }
  }
}

TEST(SimdDispatchTest, ExtremeCodesNeverOverflowAnyKernel) {
  // All codes at +/-kInt8CodeMax: per-dim diff^2 = 126^2, the worst case
  // the maddubs path must survive without s8/s16 saturation.
  const size_t n = 4 * simd::kBlockDim;
  std::vector<int8_t> hi(n, static_cast<int8_t>(simd::kInt8CodeMax));
  std::vector<int8_t> lo(n, static_cast<int8_t>(-simd::kInt8CodeMax));
  const int32_t per_block =
      static_cast<int32_t>(simd::kBlockDim) * (2 * simd::kInt8CodeMax) *
      (2 * simd::kInt8CodeMax);
  for (simd::Level level : SupportedLevels()) {
    std::vector<int32_t> sums(4);
    simd::ResolveBlockSsd(level)(hi.data(), lo.data(), n, sums.data());
    for (int32_t s : sums) EXPECT_EQ(s, per_block) << simd::Name(level);
  }
}

TEST(SimdDispatchTest, IdenticalInputsSumToZero) {
  Rng rng(517);
  const size_t n = 3 * simd::kBlockDim;
  const std::vector<int8_t> x = RandomCodes(&rng, n);
  for (simd::Level level : SupportedLevels()) {
    std::vector<int32_t> sums(3, -1);
    simd::ResolveBlockSsd(level)(x.data(), x.data(), n, sums.data());
    for (int32_t s : sums) EXPECT_EQ(s, 0) << simd::Name(level);
  }
}

TEST(SimdDispatchTest, NamesAndParseRoundTrip) {
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2,
                            simd::Level::kAvx512Vnni}) {
    const std::optional<simd::Level> parsed = simd::Parse(simd::Name(level));
    ASSERT_TRUE(parsed.has_value()) << simd::Name(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_EQ(simd::Parse("avx512"), simd::Level::kAvx512Vnni);
  EXPECT_FALSE(simd::Parse("").has_value());
  EXPECT_FALSE(simd::Parse("AVX2").has_value());
  EXPECT_FALSE(simd::Parse("neon").has_value());
}

TEST(SimdDispatchTest, ActiveNeverExceedsDetectedHardware) {
  // Whatever FUZZYDB_SIMD says, Active() is clamped to what the CPU has —
  // an env typo must degrade, never fault.
  EXPECT_LE(simd::Active(), simd::Detect());
  EXPECT_NE(simd::ActiveBlockSsd(), nullptr);
  EXPECT_EQ(simd::ActiveBlockSsd(), simd::ResolveBlockSsd(simd::Active()));
}

}  // namespace
}  // namespace fuzzydb
