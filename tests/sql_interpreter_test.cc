#include "sql/interpreter.h"

#include <gtest/gtest.h>

#include "middleware/vector_source.h"

namespace fuzzydb {
namespace {

class InterpreterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Color~red and Shape~round over a 5-object universe.
    ASSERT_TRUE(catalog_
                    .RegisterSource(
                        "Color", "red",
                        std::make_unique<VectorSource>(*VectorSource::Create(
                            {{1, 0.9}, {2, 0.8}, {3, 0.3}, {4, 0.6},
                             {5, 0.1}})))
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterSource(
                        "Shape", "round",
                        std::make_unique<VectorSource>(*VectorSource::Create(
                            {{1, 0.2}, {2, 0.7}, {3, 0.9}, {4, 0.5},
                             {5, 0.95}})))
                    .ok());
  }

  Catalog catalog_;
};

TEST_F(InterpreterTest, ConjunctionUnderMin) {
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 2 FROM images WHERE Color ~ 'red' AND Shape ~ 'round'",
      &catalog_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // min grades: 1->0.2, 2->0.7, 3->0.3, 4->0.5, 5->0.1; top-2 = {2, 4}.
  ASSERT_EQ(r->topk.items.size(), 2u);
  EXPECT_EQ(r->topk.items[0].id, 2u);
  EXPECT_DOUBLE_EQ(r->topk.items[0].grade, 0.7);
  EXPECT_EQ(r->topk.items[1].id, 4u);
  EXPECT_DOUBLE_EQ(r->topk.items[1].grade, 0.5);
}

TEST_F(InterpreterTest, DisjunctionUsesShortcut) {
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 1 FROM images WHERE Color ~ 'red' OR Shape ~ 'round'",
      &catalog_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algorithm_used, Algorithm::kDisjunctionShortcut);
  // max grades peak at object 5 (0.95).
  EXPECT_EQ(r->topk.items[0].id, 5u);
  EXPECT_DOUBLE_EQ(r->topk.items[0].grade, 0.95);
}

TEST_F(InterpreterTest, WeightsChangeTheWinner) {
  // Unweighted min ranks object 2 (0.7) over object 4 (0.5); with weights
  // 9:1 on color the scores become
  //   object 1: (0.9-0.1)*0.9 + 2*0.1*min(0.9,0.2) = 0.76
  //   object 2: (0.9-0.1)*0.8 + 2*0.1*min(0.8,0.7) = 0.78
  // so object 2 still wins but with a very different grade, and object 1
  // overtakes object 4 (0.58) for second place.
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 2 FROM images WHERE Color ~ 'red' AND Shape ~ 'round' "
      "WEIGHTS (9, 1)",
      &catalog_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->topk.items.size(), 2u);
  EXPECT_EQ(r->topk.items[0].id, 2u);
  EXPECT_NEAR(r->topk.items[0].grade, 0.78, 1e-12);
  EXPECT_EQ(r->topk.items[1].id, 1u);
  EXPECT_NEAR(r->topk.items[1].grade, 0.76, 1e-12);
}

TEST_F(InterpreterTest, ViaOverridesAlgorithm) {
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 2 FROM images WHERE Color ~ 'red' AND Shape ~ 'round' "
      "VIA naive",
      &catalog_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algorithm_used, Algorithm::kNaive);
  EXPECT_EQ(r->topk.cost.sorted, 10u);  // m*N = 2*5
}

TEST_F(InterpreterTest, UsingChangesTheRule) {
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 1 FROM images WHERE Color ~ 'red' AND Shape ~ 'round' "
      "USING product",
      &catalog_);
  ASSERT_TRUE(r.ok());
  // product grades: 1->0.18, 2->0.56, 3->0.27, 4->0.30, 5->0.095.
  EXPECT_EQ(r->topk.items[0].id, 2u);
  EXPECT_NEAR(r->topk.items[0].grade, 0.56, 1e-12);
}

TEST_F(InterpreterTest, CombinedAlgorithmRunsViaCa) {
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 2 FROM images WHERE Color ~ 'red' AND Shape ~ 'round' "
      "VIA ca",
      &catalog_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->algorithm_used, Algorithm::kCombined);
  // Same winners as the min ground truth (grades may be lower bounds, but
  // on this 5-object universe CA resolves everything).
  ASSERT_EQ(r->topk.items.size(), 2u);
  EXPECT_EQ(r->topk.items[0].id, 2u);
  EXPECT_EQ(r->topk.items[1].id, 4u);
}

TEST_F(InterpreterTest, OwaRuleRunsEndToEnd) {
  // OWA with all weight on the largest rank == max: object 5 (0.95) wins.
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 1 FROM images WHERE Color ~ 'red' AND Shape ~ 'round' "
      "USING owa WEIGHTS (1, 0)",
      &catalog_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->topk.items[0].id, 5u);
  EXPECT_DOUBLE_EQ(r->topk.items[0].grade, 0.95);
}

TEST_F(InterpreterTest, NegationFallsBackToNaive) {
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 1 FROM images WHERE Color ~ 'red' AND NOT Shape ~ 'round'",
      &catalog_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algorithm_used, Algorithm::kNaive);
  // min(color, 1-shape): 1->0.8... object 1: min(0.9, 0.8)=0.8 wins.
  EXPECT_EQ(r->topk.items[0].id, 1u);
  EXPECT_DOUBLE_EQ(r->topk.items[0].grade, 0.8);
}

TEST_F(InterpreterTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(RunSelect("garbage", &catalog_).ok());
  EXPECT_FALSE(
      RunSelect("SELECT TOP 1 FROM x WHERE Nope ~ 'y'", &catalog_).ok());
  EXPECT_FALSE(RunSelect("SELECT TOP 1 FROM x WHERE Color ~ 'red'", nullptr)
                   .ok());
  // Forcing the shortcut on a conjunction must fail loudly.
  EXPECT_FALSE(RunSelect(
                   "SELECT TOP 1 FROM x WHERE Color ~ 'red' AND "
                   "Shape ~ 'round' VIA shortcut",
                   &catalog_)
                   .ok());
}

TEST_F(InterpreterTest, ExplainReportsThePlanWithoutExecuting) {
  Result<PlanChoice> plan = ExplainSelect(
      "EXPLAIN SELECT TOP 2 FROM images WHERE Color ~ 'red' AND "
      "Shape ~ 'round'",
      &catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT(plan->considered.size(), 1u);
  EXPECT_GT(plan->estimated_cost, 0.0);
  std::string text = FormatPlan(*plan);
  EXPECT_NE(text.find("plan:"), std::string::npos);
  EXPECT_NE(text.find("<= chosen"), std::string::npos);

  // RunSelect must refuse EXPLAIN statements.
  Result<ExecutionResult> run = RunSelect(
      "EXPLAIN SELECT TOP 2 FROM images WHERE Color ~ 'red'", &catalog_);
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(InterpreterTest, ExplainRespectsViaAndCostModel) {
  Result<PlanChoice> pinned = ExplainSelect(
      "EXPLAIN SELECT TOP 2 FROM images WHERE Color ~ 'red' AND "
      "Shape ~ 'round' VIA naive",
      &catalog_);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->algorithm, Algorithm::kNaive);
  EXPECT_EQ(pinned->considered.size(), 1u);

  // Expensive random access drives the plan to NRA.
  CostModel pricey;
  pricey.random_unit = 100.0;
  Result<PlanChoice> plan = ExplainSelect(
      "SELECT TOP 2 FROM images WHERE Color ~ 'red' AND Shape ~ 'round'",
      &catalog_, pricey);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->algorithm == Algorithm::kNoRandomAccess ||
              plan->algorithm == Algorithm::kNaive);
}

TEST_F(InterpreterTest, ExplainErrorsOnUnknownAttribute) {
  EXPECT_FALSE(
      ExplainSelect("SELECT TOP 2 FROM x WHERE Nope ~ 'y'", &catalog_).ok());
  EXPECT_FALSE(ExplainSelect("SELECT TOP 2 FROM x WHERE Color ~ 'red'",
                             nullptr)
                   .ok());
}

TEST_F(InterpreterTest, FormatResultIsReadable) {
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 2 FROM images WHERE Color ~ 'red' AND Shape ~ 'round'",
      &catalog_);
  ASSERT_TRUE(r.ok());
  std::string text = FormatResult(*r);
  EXPECT_NE(text.find("object"), std::string::npos);
  EXPECT_NE(text.find("grade 0.7"), std::string::npos);
  EXPECT_NE(text.find("algorithm: ta"), std::string::npos);
  EXPECT_NE(text.find("total cost"), std::string::npos);
}

}  // namespace
}  // namespace fuzzydb
