#include "core/query.h"

#include <gtest/gtest.h>

#include <unordered_map>

namespace fuzzydb {
namespace {

// Oracle mapping attribute name -> fixed grade per object id.
GradeOracle MakeOracle(
    std::unordered_map<std::string, std::unordered_map<ObjectId, double>>
        grades) {
  return [grades = std::move(grades)](const Query& atom, ObjectId id) {
    auto ait = grades.find(atom.attribute());
    if (ait == grades.end()) return 0.0;
    auto oit = ait->second.find(id);
    return oit == ait->second.end() ? 0.0 : oit->second;
  };
}

TEST(QueryTest, AtomicEvaluatesViaOracle) {
  QueryPtr q = Query::Atomic("Color", "red");
  EXPECT_EQ(q->kind(), Query::Kind::kAtomic);
  EXPECT_EQ(q->attribute(), "Color");
  EXPECT_EQ(q->target(), "red");
  GradeOracle oracle = MakeOracle({{"Color", {{1, 0.8}}}});
  EXPECT_DOUBLE_EQ(q->Grade(oracle, 1), 0.8);
  EXPECT_DOUBLE_EQ(q->Grade(oracle, 2), 0.0);
}

TEST(QueryTest, ConjunctionUsesMinByDefault) {
  QueryPtr q = Query::And(
      {Query::Atomic("Color", "red"), Query::Atomic("Shape", "round")});
  GradeOracle oracle =
      MakeOracle({{"Color", {{1, 0.8}}}, {"Shape", {{1, 0.5}}}});
  EXPECT_DOUBLE_EQ(q->Grade(oracle, 1), 0.5);
}

TEST(QueryTest, DisjunctionUsesMaxByDefault) {
  QueryPtr q = Query::Or(
      {Query::Atomic("Color", "red"), Query::Atomic("Shape", "round")});
  GradeOracle oracle =
      MakeOracle({{"Color", {{1, 0.8}}}, {"Shape", {{1, 0.5}}}});
  EXPECT_DOUBLE_EQ(q->Grade(oracle, 1), 0.8);
}

TEST(QueryTest, CustomRuleOnConjunction) {
  QueryPtr q = Query::And(
      {Query::Atomic("A", "x"), Query::Atomic("B", "y")},
      TNormRule(TNormKind::kProduct));
  GradeOracle oracle = MakeOracle({{"A", {{1, 0.5}}}, {"B", {{1, 0.4}}}});
  EXPECT_DOUBLE_EQ(q->Grade(oracle, 1), 0.2);
}

TEST(QueryTest, NegationUsesStandardNegationByDefault) {
  QueryPtr q = Query::Not(Query::Atomic("Color", "red"));
  GradeOracle oracle = MakeOracle({{"Color", {{1, 0.8}}}});
  EXPECT_DOUBLE_EQ(q->Grade(oracle, 1), 0.2);
}

TEST(QueryTest, WeightedAndAppliesFaginWimmers) {
  Result<Weighting> w = Weighting::Create({2.0 / 3.0, 1.0 / 3.0});
  ASSERT_TRUE(w.ok());
  Result<QueryPtr> q = Query::WeightedAnd(
      {Query::Atomic("Color", "red"), Query::Atomic("Shape", "round")}, *w);
  ASSERT_TRUE(q.ok());
  GradeOracle oracle =
      MakeOracle({{"Color", {{1, 0.9}}}, {"Shape", {{1, 0.3}}}});
  // (θ1-θ2)·x1 + 2θ2·min(x1,x2) = (1/3)·0.9 + (2/3)·0.3.
  EXPECT_NEAR((*q)->Grade(oracle, 1), 0.3 + 0.2, 1e-12);
  EXPECT_TRUE((*q)->weights().has_value());
}

TEST(QueryTest, WeightedAndRejectsArityMismatch) {
  Result<Weighting> w = Weighting::Create({0.5, 0.5});
  ASSERT_TRUE(w.ok());
  Result<QueryPtr> q = Query::WeightedAnd({Query::Atomic("A", "x")}, *w);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, NestedTreeEvaluation) {
  // (A AND (B OR C)) with defaults: min(a, max(b, c)).
  QueryPtr q = Query::And(
      {Query::Atomic("A", "x"),
       Query::Or({Query::Atomic("B", "y"), Query::Atomic("C", "z")})});
  GradeOracle oracle = MakeOracle(
      {{"A", {{1, 0.7}}}, {"B", {{1, 0.4}}}, {"C", {{1, 0.6}}}});
  EXPECT_DOUBLE_EQ(q->Grade(oracle, 1), 0.6);
}

TEST(QueryTest, CollectAtomsLeftToRight) {
  QueryPtr q = Query::And(
      {Query::Atomic("A", "x"),
       Query::Not(Query::Atomic("B", "y")),
       Query::Or({Query::Atomic("C", "z"), Query::Atomic("D", "w")})});
  std::vector<const Query*> atoms;
  q->CollectAtoms(&atoms);
  ASSERT_EQ(atoms.size(), 4u);
  EXPECT_EQ(atoms[0]->attribute(), "A");
  EXPECT_EQ(atoms[1]->attribute(), "B");
  EXPECT_EQ(atoms[2]->attribute(), "C");
  EXPECT_EQ(atoms[3]->attribute(), "D");
  EXPECT_EQ(q->NumAtoms(), 4u);
}

TEST(QueryTest, MonotonicityAndStrictnessClassification) {
  QueryPtr conj = Query::And(
      {Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  EXPECT_TRUE(conj->IsMonotone());
  EXPECT_TRUE(conj->IsStrict());

  QueryPtr disj = Query::Or(
      {Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  EXPECT_TRUE(disj->IsMonotone());
  EXPECT_FALSE(disj->IsStrict());  // max is not strict

  QueryPtr negated = Query::And(
      {Query::Atomic("A", "x"), Query::Not(Query::Atomic("B", "y"))});
  EXPECT_FALSE(negated->IsMonotone());
  EXPECT_FALSE(negated->IsStrict());

  QueryPtr nested = Query::And(
      {Query::Atomic("A", "x"),
       Query::Or({Query::Atomic("B", "y"), Query::Atomic("C", "z")})});
  EXPECT_TRUE(nested->IsMonotone());
  EXPECT_FALSE(nested->IsStrict());  // inner max breaks strictness
}

TEST(QueryTest, ToStringIsReadable) {
  QueryPtr q = Query::And(
      {Query::Atomic("Artist", "Beatles"),
       Query::Atomic("AlbumColor", "red")});
  std::string s = q->ToString();
  EXPECT_NE(s.find("Artist='Beatles'"), std::string::npos);
  EXPECT_NE(s.find("AND[min]"), std::string::npos);
  EXPECT_NE(Query::Not(q)->ToString().find("NOT("), std::string::npos);
}

}  // namespace
}  // namespace fuzzydb
