#include "index/rtree.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "common/random.h"

namespace fuzzydb {
namespace {

std::vector<double> RandomPoint(Rng* rng, size_t dim) {
  std::vector<double> p(dim);
  for (double& c : p) c = rng->NextDouble();
  return p;
}

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

TEST(RectTest, ExtendVolumeEnlargementMinDist) {
  Rect r(std::vector<double>{0.2, 0.2});
  EXPECT_DOUBLE_EQ(r.Volume(), 0.0);  // degenerate point
  Rect other(std::vector<double>{0.6, 0.4});
  r.Extend(other);
  EXPECT_NEAR(r.Volume(), 0.4 * 0.2, 1e-12);
  Rect far(std::vector<double>{1.0, 1.0});
  EXPECT_GT(r.Enlargement(far), 0.0);
  // MinDist: inside -> 0; outside -> squared distance to the border.
  std::vector<double> inside{0.3, 0.3};
  EXPECT_DOUBLE_EQ(r.MinDist2(inside), 0.0);
  std::vector<double> outside{0.7, 0.4};
  EXPECT_NEAR(r.MinDist2(outside), 0.01, 1e-12);
}

TEST(RTreeTest, InsertValidatesInput) {
  RTree tree(3);
  EXPECT_FALSE(tree.Insert(1, std::vector<double>{0.5, 0.5}).ok());
  EXPECT_FALSE(tree.Insert(1, std::vector<double>{0.5, 0.5, 1.5}).ok());
  EXPECT_TRUE(tree.Insert(1, std::vector<double>{0.5, 0.5, 0.5}).ok());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeTest, KnnValidatesInput) {
  RTree tree(2);
  ASSERT_TRUE(tree.Insert(1, std::vector<double>{0.5, 0.5}).ok());
  EXPECT_FALSE(tree.Knn(std::vector<double>{0.5}, 1, nullptr).ok());
  EXPECT_FALSE(tree.Knn(std::vector<double>{0.5, 0.5}, 0, nullptr).ok());
}

TEST(RTreeTest, GrowsInHeightUnderInsertions) {
  Rng rng(503);
  RTree tree(2, /*max_entries=*/8);
  EXPECT_EQ(tree.Height(), 1u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(i, RandomPoint(&rng, 2)).ok());
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GE(tree.Height(), 3u);
}

class RTreeKnnTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeKnnTest, MatchesLinearScanExactly) {
  const size_t dim = GetParam();
  Rng rng(509 + dim);
  RTree tree(dim);
  LinearScanIndex scan(dim);
  for (int i = 0; i < 600; ++i) {
    std::vector<double> p = RandomPoint(&rng, dim);
    ASSERT_TRUE(tree.Insert(i, p).ok());
    ASSERT_TRUE(scan.Insert(i, p).ok());
  }
  for (int q = 0; q < 10; ++q) {
    std::vector<double> query = RandomPoint(&rng, dim);
    for (size_t k : {1u, 5u, 20u}) {
      Result<std::vector<KnnNeighbor>> a = tree.Knn(query, k, nullptr);
      Result<std::vector<KnnNeighbor>> b = scan.Knn(query, k, nullptr);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->size(), b->size());
      for (size_t i = 0; i < a->size(); ++i) {
        EXPECT_EQ((*a)[i].id, (*b)[i].id) << "dim " << dim << " rank " << i;
        EXPECT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RTreeKnnTest, ::testing::Values(2, 4, 8, 16),
                         [](const auto& info) {
                           std::string name = "dim";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(RTreeTest, LowDimensionKnnPrunesMostOfTheTree) {
  Rng rng(521);
  RTree tree(2);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Insert(i, RandomPoint(&rng, 2)).ok());
  }
  KnnStats stats;
  ASSERT_TRUE(tree.Knn(std::vector<double>{0.5, 0.5}, 10, &stats).ok());
  // In 2-d, best-first search should visit a small fraction of points.
  EXPECT_LT(stats.distance_computations, 1000u);
  EXPECT_GT(stats.node_accesses, 0u);
}

TEST(RTreeTest, KnnLargerThanSizeReturnsEverything) {
  Rng rng(523);
  RTree tree(3);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree.Insert(i, RandomPoint(&rng, 3)).ok());
  }
  Result<std::vector<KnnNeighbor>> r =
      tree.Knn(std::vector<double>{0.5, 0.5, 0.5}, 100, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 20u);
}

TEST(RTreeBulkLoadTest, StrTreeMatchesLinearScan) {
  Rng rng(547);
  const size_t dim = 3, n = 1000;
  std::vector<ObjectId> ids(n);
  std::vector<double> coords(n * dim);
  LinearScanIndex scan(dim);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = i;
    for (size_t d = 0; d < dim; ++d) {
      coords[i * dim + d] = rng.NextDouble();
    }
    ASSERT_TRUE(scan.Insert(i, {coords.data() + i * dim, dim}).ok());
  }
  RTree tree(dim);
  ASSERT_TRUE(tree.BulkLoadStr(ids, coords).ok());
  EXPECT_EQ(tree.size(), n);
  for (int q = 0; q < 10; ++q) {
    std::vector<double> query = RandomPoint(&rng, dim);
    Result<std::vector<KnnNeighbor>> a = tree.Knn(query, 8, nullptr);
    Result<std::vector<KnnNeighbor>> b = scan.Knn(query, 8, nullptr);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].id, (*b)[i].id) << "rank " << i;
    }
  }
}

TEST(RTreeBulkLoadTest, PackedTreeBeatsInsertionBuiltOnNodeAccesses) {
  Rng rng(557);
  const size_t dim = 2, n = 5000;
  std::vector<ObjectId> ids(n);
  std::vector<double> coords(n * dim);
  RTree inserted(dim);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = i;
    for (size_t d = 0; d < dim; ++d) {
      coords[i * dim + d] = rng.NextDouble();
    }
    ASSERT_TRUE(inserted.Insert(i, {coords.data() + i * dim, dim}).ok());
  }
  RTree packed(dim);
  ASSERT_TRUE(packed.BulkLoadStr(ids, coords).ok());

  KnnStats ins_stats, pack_stats;
  for (int q = 0; q < 20; ++q) {
    std::vector<double> query = RandomPoint(&rng, dim);
    ASSERT_TRUE(inserted.Knn(query, 10, &ins_stats).ok());
    ASSERT_TRUE(packed.Knn(query, 10, &pack_stats).ok());
  }
  EXPECT_LE(pack_stats.node_accesses, ins_stats.node_accesses);
}

TEST(RTreeBulkLoadTest, ValidatesAndHandlesEmpty) {
  RTree tree(2);
  EXPECT_FALSE(tree.BulkLoadStr({1}, {0.5}).ok());  // wrong coord count
  EXPECT_FALSE(tree.BulkLoadStr({1}, {0.5, 2.0}).ok());  // out of range
  EXPECT_TRUE(tree.BulkLoadStr({}, {}).ok());
  EXPECT_EQ(tree.size(), 0u);
  Result<std::vector<KnnNeighbor>> r =
      tree.Knn(std::vector<double>{0.5, 0.5}, 3, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(RectTest, EmptyRectHasZeroVolumeAndNonNegativeEnlargement) {
  Rect empty;
  EXPECT_DOUBLE_EQ(empty.Volume(), 0.0);
  Rect point(std::vector<double>{0.25, 0.75});
  Rect box = point;
  box.Extend(Rect(std::vector<double>{0.75, 0.25}));
  // Growing an empty MBR to cover `box` costs exactly box.Volume(), never a
  // negative amount (the empty-product-=-1 bug made this -0.75).
  EXPECT_DOUBLE_EQ(empty.Enlargement(box), box.Volume());
  EXPECT_GE(empty.Enlargement(point), 0.0);
  EXPECT_GE(box.Enlargement(box), 0.0);
}

TEST(RTreeTest, EmptyTreeKnnAndIteratorDoNotCrash) {
  RTree tree(2);
  std::vector<double> query{0.5, 0.5};
  Result<std::vector<KnnNeighbor>> r = tree.Knn(query, 3, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  RTree::NearestIterator it(&tree, query);
  EXPECT_FALSE(it.Next().has_value());
  EXPECT_FALSE(it.Next().has_value());  // stays exhausted

  // Same through the bulk-load path.
  ASSERT_TRUE(tree.BulkLoadStr({}, {}).ok());
  Result<std::vector<KnnNeighbor>> r2 = tree.Knn(query, 3, nullptr);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
  RTree::NearestIterator it2(&tree, query);
  EXPECT_FALSE(it2.Next().has_value());
}

// Regression for the sqrt round-trip prune: the k-th best used to be stored
// as sqrt(d2) and re-squared for the frontier break. When sqrt rounds down,
// the re-squared key undershoots the true d2 by an ulp, and the strict >
// break discards subtrees holding equidistant points that win their tie on
// id. Duplicate-coordinate plateaus spread across many leaves make that
// 1-ulp slack an id-visible wrong answer; keys must stay squared.
TEST(RTreeTest, AdversariallyClosePlateausMatchScanBitForBit) {
  const size_t dim = 2;
  // Several radii so that some of them hit the sqrt-rounds-down case.
  for (double r : {0.05, 0.1, 0.13, 0.2, 0.29, 0.3, 0.45}) {
    RTree tree(dim, /*max_entries=*/4);  // small fanout: many leaves
    LinearScanIndex scan(dim);
    ObjectId next_id = 0;
    // A plateau of exact duplicates at distance r in each axis direction,
    // interleaved so leaf splits scatter equal ids across subtrees.
    const std::vector<std::vector<double>> plateau = {
        {0.5 + r, 0.5}, {0.5 - r, 0.5}, {0.5, 0.5 + r}, {0.5, 0.5 - r}};
    for (int copy = 0; copy < 10; ++copy) {
      for (const std::vector<double>& p : plateau) {
        ASSERT_TRUE(tree.Insert(next_id, p).ok());
        ASSERT_TRUE(scan.Insert(next_id, p).ok());
        ++next_id;
      }
    }
    // Background points away from the plateau.
    Rng rng(601);
    for (int i = 0; i < 60; ++i) {
      std::vector<double> p = RandomPoint(&rng, dim);
      ASSERT_TRUE(tree.Insert(next_id, p).ok());
      ASSERT_TRUE(scan.Insert(next_id, p).ok());
      ++next_id;
    }
    std::vector<double> query{0.5, 0.5};
    for (size_t k = 1; k <= next_id; ++k) {
      Result<std::vector<KnnNeighbor>> a = tree.Knn(query, k, nullptr);
      Result<std::vector<KnnNeighbor>> b = scan.Knn(query, k, nullptr);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->size(), b->size()) << "r=" << r << " k=" << k;
      for (size_t i = 0; i < a->size(); ++i) {
        ASSERT_EQ((*a)[i].id, (*b)[i].id)
            << "r=" << r << " k=" << k << " rank " << i;
        ASSERT_TRUE(BitEqual((*a)[i].distance, (*b)[i].distance))
            << "r=" << r << " k=" << k << " rank " << i;
      }
    }
  }
}

TEST(NearestIteratorTest, PrefixEqualsBatchKnnForEveryK) {
  Rng rng(607);
  const size_t dim = 3, n = 150;
  RTree tree(dim, /*max_entries=*/6);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(i, RandomPoint(&rng, dim)).ok());
  }
  std::vector<double> query{0.4, 0.6, 0.5};
  // One full stream, then every Knn(k) must be exactly its length-k prefix,
  // bit for bit.
  RTree::NearestIterator it(&tree, query);
  std::vector<KnnNeighbor> stream;
  while (auto next = it.Next()) stream.push_back(*next);
  ASSERT_EQ(stream.size(), n);
  for (size_t k = 1; k <= n; ++k) {
    Result<std::vector<KnnNeighbor>> batch = tree.Knn(query, k, nullptr);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), k);
    for (size_t i = 0; i < k; ++i) {
      ASSERT_EQ((*batch)[i].id, stream[i].id) << "k=" << k << " rank " << i;
      ASSERT_TRUE(BitEqual((*batch)[i].distance, stream[i].distance))
          << "k=" << k << " rank " << i;
    }
  }
}

TEST(NearestIteratorTest, DuplicatePointTieStormStreamsInIdOrder) {
  RTree tree(2, /*max_entries=*/4);
  // 40 copies of the same point — the whole database is one tie plateau
  // scattered across ~10 leaves — plus a single nearer and farther point.
  for (ObjectId id = 10; id < 50; ++id) {
    ASSERT_TRUE(tree.Insert(id, std::vector<double>{0.8, 0.8}).ok());
  }
  ASSERT_TRUE(tree.Insert(5, std::vector<double>{0.55, 0.55}).ok());
  ASSERT_TRUE(tree.Insert(99, std::vector<double>{0.1, 0.1}).ok());

  RTree::NearestIterator it(&tree, std::vector<double>{0.5, 0.5});
  std::optional<KnnNeighbor> first = it.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 5u);
  for (ObjectId expect = 10; expect < 50; ++expect) {
    std::optional<KnnNeighbor> next = it.Next();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->id, expect);  // deterministic ascending-id tie order
  }
  std::optional<KnnNeighbor> last = it.Next();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->id, 99u);
  EXPECT_FALSE(it.Next().has_value());
  EXPECT_FALSE(it.Next().has_value());  // exhaustion is permanent
}

TEST(LinearScanTest, DistancesAreSortedAndComplete) {
  Rng rng(541);
  LinearScanIndex scan(4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(scan.Insert(i, RandomPoint(&rng, 4)).ok());
  }
  KnnStats stats;
  Result<std::vector<KnnNeighbor>> r =
      scan.Knn(RandomPoint(&rng, 4), 10, &stats);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 10u);
  for (size_t i = 1; i < r->size(); ++i) {
    EXPECT_GE((*r)[i].distance, (*r)[i - 1].distance);
  }
  EXPECT_EQ(stats.distance_computations, 100u);
}

}  // namespace
}  // namespace fuzzydb
