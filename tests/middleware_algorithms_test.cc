// Correctness and cost-accounting tests for all top-k algorithms, cross
// checked against the naive ground truth over randomized workloads.

#include <gtest/gtest.h>

#include "core/weights.h"
#include "middleware/disjunction.h"
#include "middleware/fagin.h"
#include "middleware/filtered.h"
#include "middleware/naive.h"
#include "middleware/nra.h"
#include "middleware/threshold.h"
#include "sim/experiment.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

struct AlgoCase {
  std::string name;
  size_t m;
  size_t k;
  TNormKind rule_kind;
};

class TopKCorrectnessTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(TopKCorrectnessTest, AllAlgorithmsAgreeWithGroundTruth) {
  const AlgoCase& c = GetParam();
  Rng rng(211);
  Workload w = IndependentUniform(&rng, 400, c.m);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  ScoringRulePtr rule = TNormRule(c.rule_kind);

  Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
  ASSERT_TRUE(truth.ok());

  Result<TopKResult> naive = NaiveTopK(ptrs, *rule, c.k);
  ASSERT_TRUE(naive.ok());
  EXPECT_TRUE(IsValidTopK(naive->items, *truth, c.k)) << "naive";

  Result<TopKResult> fagin = FaginTopK(ptrs, *rule, c.k);
  ASSERT_TRUE(fagin.ok());
  EXPECT_TRUE(IsValidTopK(fagin->items, *truth, c.k)) << "fagin";

  Result<TopKResult> ta = ThresholdTopK(ptrs, *rule, c.k);
  ASSERT_TRUE(ta.ok());
  EXPECT_TRUE(IsValidTopK(ta->items, *truth, c.k)) << "ta";

  Result<TopKResult> nra = NoRandomAccessTopK(ptrs, *rule, c.k);
  ASSERT_TRUE(nra.ok());
  // NRA certifies the set; grades may be lower bounds, so check membership.
  std::vector<GradedObject> expected = truth->TopK(c.k);
  double kth = expected.back().grade;
  ASSERT_EQ(nra->items.size(), std::min(c.k, truth->size()));
  for (const GradedObject& g : nra->items) {
    EXPECT_GE(*truth->GradeOf(g.id), kth - 1e-12) << "nra member";
  }
  EXPECT_EQ(nra->cost.random, 0u) << "NRA must never use random access";

  Result<TopKResult> filtered = FilteredSimulationTopK(ptrs, *rule, c.k);
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(IsValidTopK(filtered->items, *truth, c.k)) << "filtered";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKCorrectnessTest,
    ::testing::Values(
        AlgoCase{"m2_k1_min", 2, 1, TNormKind::kMinimum},
        AlgoCase{"m2_k10_min", 2, 10, TNormKind::kMinimum},
        AlgoCase{"m3_k5_min", 3, 5, TNormKind::kMinimum},
        AlgoCase{"m4_k10_min", 4, 10, TNormKind::kMinimum},
        AlgoCase{"m2_k10_product", 2, 10, TNormKind::kProduct},
        AlgoCase{"m3_k10_lukasiewicz", 3, 10, TNormKind::kLukasiewicz},
        AlgoCase{"m2_k10_hamacher", 2, 10, TNormKind::kHamacher},
        AlgoCase{"m2_k400_everything", 2, 400, TNormKind::kMinimum},
        AlgoCase{"m2_k1000_oversized", 2, 1000, TNormKind::kMinimum}),
    [](const auto& info) { return info.param.name; });

TEST(TopKArgumentsTest, RejectBadInputs) {
  Rng rng(223);
  Workload w = IndependentUniform(&rng, 10, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  ScoringRulePtr min = MinRule();

  EXPECT_FALSE(FaginTopK({}, *min, 1).ok());
  EXPECT_FALSE(FaginTopK(ptrs, *min, 0).ok());

  // Unequal-length lists are legal: an object absent from a list has grade
  // 0 there, so a shorter list is just one that stopped delivering early.
  // (middleware_exhausted_test.cc covers the semantics in depth.)
  Result<VectorSource> small = VectorSource::Create({{1, 0.5}});
  ASSERT_TRUE(small.ok());
  std::vector<GradedSource*> unequal{ptrs[0], &*small};
  EXPECT_TRUE(FaginTopK(unequal, *min, 1).ok());
}

TEST(TopKArgumentsTest, MonotoneOnlyAlgorithmsRejectNonMonotoneRules) {
  Rng rng(227);
  Workload w = IndependentUniform(&rng, 10, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  ScoringRulePtr bad = UserDefinedRule(
      "antitone",
      [](std::span<const double> s) { return 1.0 - s[0]; },
      /*claims_monotone=*/false, /*claims_strict=*/false);

  EXPECT_EQ(FaginTopK(ptrs, *bad, 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ThresholdTopK(ptrs, *bad, 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(NoRandomAccessTopK(ptrs, *bad, 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(FilteredSimulationTopK(ptrs, *bad, 1).status().code(),
            StatusCode::kFailedPrecondition);
  // Naive is correct for any rule.
  EXPECT_TRUE(NaiveTopK(ptrs, *bad, 1).ok());
}

TEST(CostAccountingTest, NaiveCostsExactlyMTimesN) {
  Rng rng(229);
  const size_t n = 500, m = 3;
  Workload w = IndependentUniform(&rng, n, m);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<TopKResult> r = NaiveTopK(ptrs, *MinRule(), 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cost.sorted, m * n);
  EXPECT_EQ(r->cost.random, 0u);
}

TEST(CostAccountingTest, DisjunctionCostsExactlyMTimesK) {
  // Paper §4.1: for max the cost is mk, independent of N.
  Rng rng(233);
  for (size_t n : {100u, 1000u, 5000u}) {
    Workload w = IndependentUniform(&rng, n, 2);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    Result<TopKResult> r = DisjunctionTopK(ptrs, 10);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->cost.sorted, 20u) << "n=" << n;
    EXPECT_EQ(r->cost.random, 0u);
  }
}

TEST(CostAccountingTest, FaginBeatsNaiveOnLargeIndependentInputs) {
  Rng rng(239);
  const size_t n = 20000;
  Workload w = IndependentUniform(&rng, n, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<TopKResult> fagin = FaginTopK(ptrs, *MinRule(), 10);
  ASSERT_TRUE(fagin.ok());
  // Theory: ~ sqrt(kN) ≈ 450 sorted accesses per list; naive is 40000.
  EXPECT_LT(fagin->cost.total(), 2u * n / 2);
  Result<TopKResult> ta = ThresholdTopK(ptrs, *MinRule(), 10);
  ASSERT_TRUE(ta.ok());
  EXPECT_LE(ta->cost.total(), fagin->cost.total() * 3);
}

TEST(DisjunctionTest, MatchesNaiveUnderMaxRule) {
  Rng rng(241);
  Workload w = IndependentUniform(&rng, 300, 3);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MaxRule());
  ASSERT_TRUE(truth.ok());
  for (size_t k : {1u, 5u, 20u}) {
    Result<TopKResult> r = DisjunctionTopK(ptrs, k);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(IsValidTopK(r->items, *truth, k)) << "k=" << k;
  }
}

TEST(ThresholdTest, NeverReadsDeeperThanFagin) {
  // TA stops at or before A0's depth on every instance (it is instance
  // optimal); compare total sorted accesses on a batch of random workloads.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(300 + seed);
    Workload w = IndependentUniform(&rng, 2000, 3);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    Result<TopKResult> fagin = FaginTopK(ptrs, *MinRule(), 5);
    Result<TopKResult> ta = ThresholdTopK(ptrs, *MinRule(), 5);
    ASSERT_TRUE(fagin.ok());
    ASSERT_TRUE(ta.ok());
    EXPECT_LE(ta->cost.sorted, fagin->cost.sorted) << "seed " << seed;
  }
}

TEST(NraTest, ReportsBoundsWhenGradesUnresolved) {
  Rng rng(251);
  Workload w = IndependentUniform(&rng, 500, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<TopKResult> r = NoRandomAccessTopK(ptrs, *MinRule(), 3);
  ASSERT_TRUE(r.ok());
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());
  // Reported grades never exceed the true grade (they are lower bounds).
  for (const GradedObject& g : r->items) {
    EXPECT_LE(g.grade, *truth->GradeOf(g.id) + 1e-12);
  }
}

TEST(FilteredTest, ReportsRoundsAndShrinks) {
  Rng rng(257);
  Workload w = IndependentUniform(&rng, 2000, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  FilteredOptions options;
  options.initial_alpha = 0.999;  // deliberately too aggressive
  options.shrink = 0.7;
  FilteredStats stats;
  Result<TopKResult> r =
      FilteredSimulationTopK(ptrs, *MinRule(), 10, options, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.rounds, 1u);
  EXPECT_LT(stats.final_alpha, 0.999);
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(IsValidTopK(r->items, *truth, 10));
  FilteredOptions bad;
  bad.initial_alpha = 1.5;
  EXPECT_FALSE(FilteredSimulationTopK(ptrs, *MinRule(), 10, bad).ok());
}

TEST(FilteredTest, UniformEstimateStrategyIsNearOptimal) {
  Rng rng(259);
  Workload w = IndependentUniform(&rng, 20000, 2);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());
  Result<TopKResult> a0 = FaginTopK(ptrs, *MinRule(), 10);
  ASSERT_TRUE(a0.ok());

  FilteredOptions options;
  options.strategy = AlphaStrategy::kUniformEstimate;
  options.safety = 2.0;
  FilteredStats stats;
  Result<TopKResult> r =
      FilteredSimulationTopK(ptrs, *MinRule(), 10, options, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsValidTopK(r->items, *truth, 10));
  EXPECT_LE(stats.rounds, 3u);
  // Within a small factor of true A0 on uniform data.
  EXPECT_LT(r->cost.total(), 5u * a0->cost.total());
  FilteredOptions bad;
  bad.safety = 0.5;
  EXPECT_FALSE(FilteredSimulationTopK(ptrs, *MinRule(), 10, bad).ok());
}

TEST(WeightedAlgorithmsTest, FaginStaysCorrectWithWeightedRules) {
  // Paper §5: A0 continues to be correct in the weighted case.
  Rng rng(263);
  Workload w = IndependentUniform(&rng, 600, 3);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<Weighting> theta = Weighting::Create({0.5, 0.3, 0.2});
  ASSERT_TRUE(theta.ok());
  ScoringRulePtr rule = WeightedRule(MinRule(), *theta);
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
  ASSERT_TRUE(truth.ok());
  using SerialRunner = Result<TopKResult> (*)(std::span<GradedSource* const>,
                                              const ScoringRule&, size_t);
  for (SerialRunner run : {SerialRunner(FaginTopK), SerialRunner(ThresholdTopK)}) {
    Result<TopKResult> r = run(ptrs, *rule, 10);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(IsValidTopK(r->items, *truth, 10));
  }
}

TEST(PathologicalTest, ForcesLinearCostForFaginAndTA) {
  // Paper §6: "there is a provable linear lower bound" on some instances.
  const size_t n = 4000;
  Workload w = PathologicalMiddle(n);
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
  ASSERT_TRUE(truth.ok());

  Result<TopKResult> fagin = FaginTopK(ptrs, *MinRule(), 1);
  ASSERT_TRUE(fagin.ok());
  EXPECT_TRUE(IsValidTopK(fagin->items, *truth, 1));
  EXPECT_GE(fagin->cost.sorted, n / 2);  // ~n/2 deep on both lists

  Result<TopKResult> ta = ThresholdTopK(ptrs, *MinRule(), 1);
  ASSERT_TRUE(ta.ok());
  EXPECT_TRUE(IsValidTopK(ta->items, *truth, 1));
  EXPECT_GE(ta->cost.sorted, n / 2);
}

}  // namespace
}  // namespace fuzzydb
