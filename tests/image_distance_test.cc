// Quadratic-form distance (paper formula (1)) and the distance-bounding
// filter (paper formula (2), d >= d̂): metric sanity, PSD structure, the
// no-false-dismissal property, and FilteredKnn == ExactKnn.

#include <gtest/gtest.h>

#include "image/bounding.h"
#include "image/quadratic_distance.h"

namespace fuzzydb {
namespace {

class QfdTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    Rng rng(439);
    palette_ = Palette::Uniform(GetParam(), &rng);
    Result<QuadraticFormDistance> qfd =
        QuadraticFormDistance::Create(palette_);
    ASSERT_TRUE(qfd.ok()) << qfd.status().ToString();
    qfd_ = std::move(*qfd);
  }

  Palette palette_;
  QuadraticFormDistance qfd_;
};

TEST_P(QfdTest, SimilarityMatrixIsSymmetricWithUnitDiagonal) {
  const Matrix& a = qfd_.similarity();
  EXPECT_TRUE(a.IsSymmetric());
  for (size_t i = 0; i < a.rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.At(i, i), 1.0);
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_GE(a.At(i, j), -1e-12);
      EXPECT_LE(a.At(i, j), 1.0 + 1e-12);
    }
  }
}

TEST_P(QfdTest, CenteredMatrixIsPositiveSemidefinite) {
  // All eigenvalues of B = P A P must be >= 0: the distance is well-defined
  // on histogram differences.
  for (double lambda : qfd_.eigenvalues()) {
    EXPECT_GE(lambda, 0.0);
  }
  EXPECT_GT(qfd_.eigenvalues().front(), 0.0);
}

TEST_P(QfdTest, DistanceIsAPseudometricOnHistograms) {
  Rng rng(443);
  const size_t k = GetParam();
  for (int i = 0; i < 30; ++i) {
    Histogram x = RandomHistogram(&rng, k);
    Histogram y = RandomHistogram(&rng, k);
    Histogram z = RandomHistogram(&rng, k);
    EXPECT_NEAR(qfd_.Distance(x, x), 0.0, 1e-9);
    EXPECT_NEAR(qfd_.Distance(x, y), qfd_.Distance(y, x), 1e-12);
    EXPECT_GE(qfd_.Distance(x, y), 0.0);
    // Triangle inequality holds because d is a seminorm of the difference.
    EXPECT_LE(qfd_.Distance(x, z),
              qfd_.Distance(x, y) + qfd_.Distance(y, z) + 1e-9);
  }
}

TEST_P(QfdTest, MaxDistanceBoundsAllPairs) {
  Rng rng(449);
  const size_t k = GetParam();
  for (int i = 0; i < 100; ++i) {
    Histogram x = RandomHistogram(&rng, k, 1, 0.0);  // extreme: single peak
    Histogram y = RandomHistogram(&rng, k, 1, 0.0);
    EXPECT_LE(qfd_.Distance(x, y), qfd_.MaxDistance() + 1e-9);
  }
}

TEST_P(QfdTest, SimilarColorsAreCloserThanDissimilarOnes) {
  // A histogram concentrated on one bin should be closer to one
  // concentrated on that bin's nearest neighbour than to the farthest bin.
  const size_t k = GetParam();
  size_t i = 0;
  size_t nearest = 0, farthest = 0;
  double dn = 1e9, df = -1.0;
  for (size_t j = 1; j < k; ++j) {
    double d = RgbDistance(palette_.color(i), palette_.color(j));
    if (d < dn) {
      dn = d;
      nearest = j;
    }
    if (d > df) {
      df = d;
      farthest = j;
    }
  }
  Histogram hi(k, 0.0), hn(k, 0.0), hf(k, 0.0);
  hi[i] = 1.0;
  hn[nearest] = 1.0;
  hf[farthest] = 1.0;
  EXPECT_LT(qfd_.Distance(hi, hn), qfd_.Distance(hi, hf));
}

INSTANTIATE_TEST_SUITE_P(BinCounts, QfdTest,
                         ::testing::Values(8, 27, 64),
                         [](const auto& info) {
                           // append, not operator+(const char*, string&&):
                           // gcc 12 -Wrestrict misfires on the latter.
                           std::string name = "k";
                           name += std::to_string(info.param);
                           return name;
                         });

class EigenFilterTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenFilterTest, LowerBoundsTheTrueDistance) {
  // Paper formula (2): d(x,y) >= d̂(x̂,ŷ) for every pair — the filter can
  // never cause a false dismissal.
  const size_t filter_dim = GetParam();
  Rng rng(457);
  Palette palette = Palette::Uniform(64, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  Result<EigenFilter> filter = EigenFilter::Create(qfd, filter_dim);
  ASSERT_TRUE(filter.ok());
  for (int i = 0; i < 300; ++i) {
    Histogram x = RandomHistogram(&rng, 64);
    Histogram y = RandomHistogram(&rng, 64);
    double d = qfd.Distance(x, y);
    double bound = EigenFilter::BoundDistance(filter->Project(x),
                                              filter->Project(y));
    EXPECT_LE(bound, d + 1e-9) << "filter dim " << filter_dim;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, EigenFilterTest, ::testing::Values(1, 3, 8),
                         [](const auto& info) {
                           std::string name = "dim";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(EigenFilterTest, CapturedEnergyGrowsWithDimension) {
  Rng rng(461);
  Palette palette = Palette::Uniform(64, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  double prev = 0.0;
  for (size_t dim : {1u, 2u, 4u, 8u, 64u}) {
    EigenFilter f = *EigenFilter::Create(qfd, dim);
    EXPECT_GE(f.CapturedEnergy(), prev - 1e-12);
    prev = f.CapturedEnergy();
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);  // full dimension captures everything
  EXPECT_FALSE(EigenFilter::Create(qfd, 0).ok());
}

TEST(FilteredKnnTest, MatchesExactKnn) {
  Rng rng(463);
  Palette palette = Palette::Uniform(64, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  EigenFilter filter = *EigenFilter::Create(qfd, 3);
  std::vector<Histogram> db;
  for (int i = 0; i < 400; ++i) db.push_back(RandomHistogram(&rng, 64));
  for (int q = 0; q < 5; ++q) {
    Histogram target = RandomHistogram(&rng, 64);
    FilteredSearchStats stats;
    Result<std::vector<std::pair<size_t, double>>> filtered =
        FilteredKnn(qfd, filter, db, target, 10, &stats);
    ASSERT_TRUE(filtered.ok());
    std::vector<std::pair<size_t, double>> exact =
        ExactKnn(qfd, db, target, 10);
    ASSERT_EQ(filtered->size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*filtered)[i].first, exact[i].first) << "rank " << i;
      EXPECT_NEAR((*filtered)[i].second, exact[i].second, 1e-12);
    }
    // The filter must actually skip work.
    EXPECT_LT(stats.full_distance_computations, db.size());
    EXPECT_EQ(stats.bound_computations, db.size());
  }
}

TEST(FilteredKnnTest, DuplicateDistancesBreakTiesByIndex) {
  // Repeated histograms make the k-th best distance a massive tie; the
  // answer must still be deterministic (distance ascending, then index) and
  // identical to the exact scan.
  Rng rng(479);
  Palette palette = Palette::Uniform(27, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  EigenFilter filter = *EigenFilter::Create(qfd, 3);
  std::vector<Histogram> distinct;
  for (int i = 0; i < 4; ++i) distinct.push_back(RandomHistogram(&rng, 27));
  std::vector<Histogram> db;
  for (int copy = 0; copy < 15; ++copy) {
    for (const Histogram& h : distinct) db.push_back(h);
  }
  Histogram target = distinct[1];
  Result<std::vector<std::pair<size_t, double>>> filtered =
      FilteredKnn(qfd, filter, db, target, 20);
  ASSERT_TRUE(filtered.ok());
  std::vector<std::pair<size_t, double>> exact = ExactKnn(qfd, db, target, 20);
  ASSERT_EQ(filtered->size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ((*filtered)[i].first, exact[i].first) << "rank " << i;
    if (i > 0 && exact[i].second == exact[i - 1].second) {
      EXPECT_LT(exact[i - 1].first, exact[i].first);
    }
  }
}

TEST(FilteredKnnTest, HandlesEdgeCases) {
  Rng rng(467);
  Palette palette = Palette::Uniform(8, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  EigenFilter filter = *EigenFilter::Create(qfd, 2);
  std::vector<Histogram> db{RandomHistogram(&rng, 8)};
  Histogram target = RandomHistogram(&rng, 8);
  EXPECT_FALSE(FilteredKnn(qfd, filter, db, target, 0).ok());
  Result<std::vector<std::pair<size_t, double>>> r =
      FilteredKnn(qfd, filter, db, target, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);  // k clamped to database size
}

}  // namespace
}  // namespace fuzzydb
