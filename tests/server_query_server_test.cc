// QueryServer determinism and admission tests (DESIGN §3j).
//
// The load-bearing property: every admitted query's answer — items, grades,
// consumed access counts, truncation point — is bit-identical to a serial
// ExecuteTopK of the same plan, at every pool size, tie-storms and budget
// truncations included. Concurrency lives between queries, never inside
// one, so the §3e determinism contract lifts from algorithms to the server.

#include "server/query_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "middleware/optimizer.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

// A query template: a shape over one of the shared workloads.
struct Template {
  QueryPtr query;
  const Workload* workload;
  size_t k;
};

QueryPtr MakeShape(size_t shape) {
  switch (shape % 4) {
    case 0:  // conjunctive
      return Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
    case 1:  // disjunctive (flat max: the m·k shortcut plan)
      return Query::Or({Query::Atomic("A", "t"), Query::Atomic("B", "t"),
                        Query::Atomic("C", "t")});
    case 2: {  // weighted conjunction
      Result<Weighting> theta = Weighting::Create({0.7, 0.3});
      Result<QueryPtr> q = Query::WeightedAnd(
          {Query::Atomic("A", "t"), Query::Atomic("B", "t")}, *theta);
      return *q;
    }
    default:  // nested monotone tree
      return Query::And(
          {Query::Atomic("A", "t"),
           Query::Or({Query::Atomic("B", "t"), Query::Atomic("C", "t")})});
  }
}

// Per-query execution context: fresh sources (VectorSource carries cursor
// state, so concurrent queries must never share instances) plus a resolver
// over them. Must outlive the query's ticket.
struct QueryCtx {
  std::unique_ptr<std::vector<VectorSource>> sources;
  SourceResolver resolver;
};

QueryCtx MakeCtx(const Workload& w) {
  QueryCtx ctx;
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  EXPECT_TRUE(sources.ok());
  ctx.sources =
      std::make_unique<std::vector<VectorSource>>(std::move(*sources));
  std::vector<VectorSource>* raw = ctx.sources.get();
  ctx.resolver = [raw](const Query& atom) -> Result<GradedSource*> {
    if (atom.attribute() == "A") return &(*raw)[0];
    if (atom.attribute() == "B") return &(*raw)[1];
    if (atom.attribute() == "C") return &(*raw)[2];
    return Status::NotFound("unknown attribute " + atom.attribute());
  };
  return ctx;
}

// The server's execution path run serially: same plan choice, same serial
// ParallelOptions, optional same budget — the reference every concurrent
// answer must match bit for bit.
ExecutionResult SerialReference(const QueryPtr& query, const Workload& w,
                                size_t k, uint64_t budget = 0) {
  QueryCtx ctx = MakeCtx(w);
  Result<PlanChoice> plan = ChoosePlan(*query, w.n(), k, CostModel{});
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  ExecutorOptions opts;
  opts.algorithm = plan->algorithm;
  opts.combined_period = plan->combined_period;
  opts.sorted_access_budget = budget;
  Result<ExecutionResult> r = ExecuteTopK(query, ctx.resolver, k, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

void ExpectBitIdentical(const TopKResult& got, const TopKResult& want,
                        const std::string& label) {
  ASSERT_EQ(got.items.size(), want.items.size()) << label;
  for (size_t i = 0; i < want.items.size(); ++i) {
    EXPECT_EQ(got.items[i].id, want.items[i].id) << label << " rank " << i;
    EXPECT_EQ(got.items[i].grade, want.items[i].grade)
        << label << " rank " << i;
  }
  EXPECT_EQ(got.cost.sorted, want.cost.sorted) << label;
  EXPECT_EQ(got.cost.random, want.cost.random) << label;
  EXPECT_EQ(got.grades_exact, want.grades_exact) << label;
  ASSERT_EQ(got.per_source.size(), want.per_source.size()) << label;
  for (size_t j = 0; j < want.per_source.size(); ++j) {
    EXPECT_EQ(got.per_source[j].sorted, want.per_source[j].sorted)
        << label << " source " << j;
    EXPECT_EQ(got.per_source[j].random, want.per_source[j].random)
        << label << " source " << j;
  }
}

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4242);
    smooth_ = IndependentUniform(&rng, 150, 3);
    // 4 grade levels over 150 objects: every list is a tie storm, the
    // regime where a nondeterministic tiebreak would show instantly.
    ties_ = QuantizedUniform(&rng, 150, 3, 4);
  }

  std::vector<Template> MakeBurst(size_t count) {
    std::vector<Template> burst;
    burst.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const Workload& w = (i % 2 == 0) ? smooth_ : ties_;
      burst.push_back({MakeShape(i), &w, 3 + (i % 6)});
    }
    return burst;
  }

  Workload smooth_;
  Workload ties_;
};

TEST_F(QueryServerTest, BurstMatchesSerialBitwiseAtEveryPoolSize) {
  const std::vector<Template> burst = MakeBurst(500);

  // Serial references, one per distinct (shape, workload, k) — shapes cycle
  // mod 4 and k mod 6, so 24 distinct templates per workload parity.
  std::vector<ExecutionResult> reference;
  reference.reserve(burst.size());
  for (const Template& t : burst) {
    reference.push_back(SerialReference(t.query, *t.workload, t.k));
  }

  const std::vector<size_t> pool_sizes = {1, 2, 7,
                                          ThreadPool::HardwareConcurrency()};
  for (size_t pool_size : pool_sizes) {
    ThreadPool pool(pool_size, /*max_queued_tasks=*/burst.size() + 8);
    QueryServerOptions options;
    options.pool = &pool;
    // Off so every query executes — the point is the execution path, and a
    // cache hit would skip it.
    options.cache_results = false;
    QueryServer server(options);

    std::vector<QueryCtx> ctxs;
    std::vector<std::shared_ptr<Ticket<ServedResult>>> tickets;
    ctxs.reserve(burst.size());
    tickets.reserve(burst.size());
    for (const Template& t : burst) {
      ctxs.push_back(MakeCtx(*t.workload));
      Result<Submission> sub =
          server.Submit(t.query, t.k, ctxs.back().resolver);
      ASSERT_TRUE(sub.ok()) << "pool=" << pool_size << ": "
                            << sub.status().ToString();
      tickets.push_back(sub->ticket);
    }
    server.Drain();

    for (size_t i = 0; i < burst.size(); ++i) {
      const ServedResult& got = tickets[i]->Wait();
      ASSERT_TRUE(got.status.ok()) << got.status.ToString();
      EXPECT_TRUE(got.completion.ok());
      EXPECT_FALSE(got.from_cache);
      ExpectBitIdentical(got.topk, reference[i].topk,
                         "pool=" + std::to_string(pool_size) + " query " +
                             std::to_string(i));
      EXPECT_EQ(got.algorithm_used, reference[i].algorithm_used)
          << "pool=" << pool_size << " query " << i;
    }
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, burst.size());
    EXPECT_EQ(stats.admitted, burst.size());
    EXPECT_EQ(stats.rejected_queue_full, 0u);
    EXPECT_EQ(stats.rejected_cost, 0u);
  }
}

TEST_F(QueryServerTest, BudgetExhaustedMatchesSerialTruncation) {
  QueryPtr query =
      Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
  const size_t k = 5;
  const uint64_t budget = 12;  // far below what the full TA run consumes

  ExecutionResult full = SerialReference(query, smooth_, k);
  ASSERT_GT(full.topk.cost.sorted, budget);

  ExecutionResult truncated = SerialReference(query, smooth_, k, budget);
  EXPECT_EQ(truncated.completion.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(truncated.topk.cost.sorted, budget);

  for (size_t pool_size : {size_t{1}, size_t{3}}) {
    ThreadPool pool(pool_size, 64);
    QueryServerOptions options;
    options.pool = &pool;
    options.cache_results = false;
    QueryServer server(options);
    QueryCtx ctx = MakeCtx(smooth_);
    SubmitOptions submit;
    submit.sorted_access_budget = budget;
    Result<Submission> sub = server.Submit(query, k, ctx.resolver, submit);
    ASSERT_TRUE(sub.ok());
    ASSERT_NE(sub->governor, nullptr);
    const ServedResult& got = sub->ticket->Wait();
    ASSERT_TRUE(got.status.ok());
    // The documented partial-result Status: the call succeeded, the answer
    // is the top-k of the consumed prefix, and it is the *same* prefix the
    // serial budgeted run consumed.
    EXPECT_EQ(got.completion.code(), StatusCode::kResourceExhausted)
        << got.completion.ToString();
    ExpectBitIdentical(got.topk, truncated.topk,
                       "budgeted pool=" + std::to_string(pool_size));
    server.Drain();
  }
}

TEST_F(QueryServerTest, DerivedBudgetTruncatesPlanBlowups) {
  // PathologicalMiddle forces every sorted-access algorithm ~n/2 deep; the
  // plan's independent-grades estimate predicts far less. With headroom
  // set, the server truncates the blowup instead of letting it starve the
  // pool — and the truncation is the deterministic budget prefix.
  Workload hard = PathologicalMiddle(400);
  QueryPtr query =
      Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
  const size_t k = 3;

  QueryServerOptions options;
  options.budget_headroom = 2.0;
  options.cache_results = false;
  QueryServer server(options);  // no pool: inline

  QueryCtx ctx;
  Result<std::vector<VectorSource>> sources = hard.MakeSources();
  ASSERT_TRUE(sources.ok());
  ctx.sources =
      std::make_unique<std::vector<VectorSource>>(std::move(*sources));
  std::vector<VectorSource>* raw = ctx.sources.get();
  ctx.resolver = [raw](const Query& atom) -> Result<GradedSource*> {
    return atom.attribute() == "A" ? &(*raw)[0] : &(*raw)[1];
  };

  Result<Submission> sub = server.Submit(query, k, ctx.resolver);
  ASSERT_TRUE(sub.ok());
  const ServedResult& got = sub->ticket->Wait();
  ASSERT_TRUE(got.status.ok());
  EXPECT_EQ(got.completion.code(), StatusCode::kResourceExhausted)
      << got.completion.ToString();
  // The budget the server derived: headroom × the plan's sorted estimate.
  Result<PlanChoice> plan = ChoosePlan(*query, hard.n(), k, CostModel{});
  ASSERT_TRUE(plan.ok());
  Result<AccessMix> mix =
      EstimateAccessMix(plan->algorithm, hard.n(), 2, k, CostModel{});
  ASSERT_TRUE(mix.ok());
  EXPECT_EQ(got.topk.cost.sorted,
            static_cast<uint64_t>(std::ceil(2.0 * mix->sorted)));
}

TEST_F(QueryServerTest, QueueFullIsExplicitRejectionNeverSilentDrop) {
  // One worker, queue capacity 1. A gate task blocks the worker, a first
  // submission fills the queue, and the second must be *rejected with a
  // Status* — counted, nothing enqueued, nothing dropped.
  ThreadPool pool(2, 1);
  QueryServerOptions options;
  options.pool = &pool;
  options.cache_results = false;
  QueryServer server(options);

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> worker_blocked{false};
  ASSERT_TRUE(pool.TryPost([&] {
    worker_blocked.store(true);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  }));
  while (!worker_blocked.load()) std::this_thread::yield();

  QueryPtr query =
      Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
  QueryCtx first = MakeCtx(smooth_);
  Result<Submission> accepted = server.Submit(query, 5, first.resolver);
  ASSERT_TRUE(accepted.ok());  // sits in the queue behind the gate

  QueryCtx second = MakeCtx(smooth_);
  Result<Submission> rejected = server.Submit(query, 5, second.resolver);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  server.Drain();

  // The accepted query still completed correctly (not dropped).
  const ServedResult& got = accepted->ticket->Wait();
  ASSERT_TRUE(got.status.ok());
  ExpectBitIdentical(got.topk, SerialReference(query, smooth_, 5).topk,
                     "accepted-behind-gate");
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
}

TEST_F(QueryServerTest, AdmissionControlRejectsOnEstimatedCost) {
  QueryServerOptions options;
  options.admission_max_cost = 1.0;  // below any real plan's estimate
  QueryServer server(options);
  QueryPtr query =
      Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
  QueryCtx ctx = MakeCtx(smooth_);
  Result<Submission> sub = server.Submit(query, 5, ctx.resolver);
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.stats().rejected_cost, 1u);
  EXPECT_EQ(server.stats().admitted, 0u);
}

// A TaskExecutor that defers every task until told to run — gives tests a
// deterministic window between Submit and execution.
class DeferredExecutor final : public TaskExecutor {
 public:
  void Schedule(std::function<void()> task) override {
    tasks_.push_back(std::move(task));
  }
  void RunAll() {
    std::vector<std::function<void()>> tasks = std::move(tasks_);
    tasks_.clear();
    for (auto& t : tasks) t();
  }

 private:
  std::vector<std::function<void()>> tasks_;
};

TEST_F(QueryServerTest, CancelBeforeExecutionMatchesSerialCancelledRun) {
  DeferredExecutor executor;
  QueryServerOptions options;
  options.executor = &executor;
  options.cache_results = false;
  QueryServer server(options);

  QueryPtr query =
      Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
  QueryCtx ctx = MakeCtx(smooth_);
  SubmitOptions submit;
  submit.sorted_access_budget = 1000;  // ensures a governor exists
  Result<Submission> sub = server.Submit(query, 5, ctx.resolver, submit);
  ASSERT_TRUE(sub.ok());
  ASSERT_NE(sub->governor, nullptr);
  EXPECT_FALSE(sub->ticket->done());

  sub->governor->Cancel();
  executor.RunAll();
  server.Drain();

  const ServedResult& got = sub->ticket->Wait();
  ASSERT_TRUE(got.status.ok());
  EXPECT_EQ(got.completion.code(), StatusCode::kCancelled)
      << got.completion.ToString();
  // Serial reference: same plan, governor cancelled before the run — zero
  // admitted sorted accesses either way.
  QueryCtx ref_ctx = MakeCtx(smooth_);
  Result<PlanChoice> plan = ChoosePlan(*query, smooth_.n(), 5, CostModel{});
  ASSERT_TRUE(plan.ok());
  ExecutorOptions opts;
  opts.algorithm = plan->algorithm;
  opts.combined_period = plan->combined_period;
  opts.governor = std::make_shared<AccessGovernor>(1000);
  opts.governor->Cancel();
  Result<ExecutionResult> ref = ExecuteTopK(query, ref_ctx.resolver, 5, opts);
  ASSERT_TRUE(ref.ok());
  ExpectBitIdentical(got.topk, ref->topk, "cancelled");
}

TEST_F(QueryServerTest, ResultCacheServesRepeatBitwise) {
  QueryServerOptions options;  // inline, cache on
  QueryServer server(options);
  QueryPtr query =
      Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
  QueryCtx ctx = MakeCtx(smooth_);

  Result<Submission> first = server.Submit(query, 5, ctx.resolver);
  ASSERT_TRUE(first.ok());
  const ServedResult& a = first->ticket->Wait();
  ASSERT_TRUE(a.status.ok());
  EXPECT_FALSE(a.from_cache);

  Result<Submission> second = server.Submit(query, 5, ctx.resolver);
  ASSERT_TRUE(second.ok());
  const ServedResult& b = second->ticket->Wait();
  ASSERT_TRUE(b.status.ok());
  EXPECT_TRUE(b.from_cache);
  ASSERT_EQ(a.topk.items.size(), b.topk.items.size());
  for (size_t i = 0; i < a.topk.items.size(); ++i) {
    EXPECT_EQ(a.topk.items[i].id, b.topk.items[i].id);
    EXPECT_EQ(a.topk.items[i].grade, b.topk.items[i].grade);
  }
  EXPECT_EQ(server.stats().served_from_cache, 1u);
  EXPECT_GE(server.cache_stats().hits, 1u);
}

TEST_F(QueryServerTest, InvalidSubmissionsFailFast) {
  QueryServer server;
  QueryCtx ctx = MakeCtx(smooth_);
  EXPECT_EQ(server.Submit(nullptr, 5, ctx.resolver).status().code(),
            StatusCode::kInvalidArgument);
  QueryPtr query = Query::Atomic("A", "t");
  EXPECT_EQ(server.Submit(query, 0, ctx.resolver).status().code(),
            StatusCode::kInvalidArgument);
  QueryPtr unknown = Query::Atomic("Nope", "t");
  EXPECT_EQ(server.Submit(unknown, 5, ctx.resolver).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace fuzzydb
