// Robustness fuzzing: randomized hostile inputs must produce error Statuses
// (never crashes, hangs, or silent corruption).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "relational/btree.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace fuzzydb {
namespace {

TEST(SqlFuzzTest, RandomBytesNeverCrashTheLexer) {
  Rng rng(1301);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.NextBounded(60);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.NextBounded(96) + 32));
    }
    Result<std::vector<Token>> tokens = Lex(input);  // ok or error, never UB
    if (tokens.ok()) {
      EXPECT_EQ(tokens->back().type, TokenType::kEnd);
    }
  }
}

TEST(SqlFuzzTest, RandomTokenSoupNeverCrashesTheParser) {
  // Well-lexed but structurally random statements.
  static const char* kFragments[] = {
      "SELECT", "EXPLAIN", "TOP",    "FROM",  "WHERE", "AND",  "OR",
      "NOT",    "USING",   "WEIGHTS", "VIA",  "(",     ")",    ",",
      "=",      "~",       ";",      "5",     "0.5",   "ident", "'str'",
      "min",    "owa",     "fagin"};
  Rng rng(1303);
  size_t parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    size_t len = 1 + rng.NextBounded(16);
    for (size_t i = 0; i < len; ++i) {
      input += kFragments[rng.NextBounded(std::size(kFragments))];
      input += " ";
    }
    Result<SelectStatement> stmt = ParseSelect(input);
    if (stmt.ok()) {
      ++parsed_ok;
      EXPECT_NE(stmt->query, nullptr);
      EXPECT_GE(stmt->k, 1u);
    }
  }
  // Sanity: the harness occasionally produces valid statements too.
  (void)parsed_ok;
}

TEST(SqlFuzzTest, DeeplyNestedParenthesesParse) {
  std::string deep = "SELECT TOP 1 FROM db WHERE ";
  for (int i = 0; i < 200; ++i) deep += "(";
  deep += "a~'1'";
  for (int i = 0; i < 200; ++i) deep += ")";
  Result<SelectStatement> stmt = ParseSelect(deep);
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->query->kind(), Query::Kind::kAtomic);
}

TEST(BTreeFuzzTest, MixedInsertEraseLookupAgainstReference) {
  Rng rng(1307);
  BTreeIndex index(ValueType::kInt64, 6);
  std::multimap<int64_t, ObjectId> reference;
  for (int op = 0; op < 20000; ++op) {
    int64_t key = rng.NextInt(0, 80);
    double dice = rng.NextDouble();
    if (dice < 0.6) {
      ObjectId id = static_cast<ObjectId>(op);
      ASSERT_TRUE(index.Insert(Value(key), id).ok());
      reference.emplace(key, id);
    } else if (dice < 0.85 && !reference.empty()) {
      // Erase a random existing posting of this key, if any.
      auto [lo, hi] = reference.equal_range(key);
      if (lo != hi) {
        ASSERT_TRUE(index.Erase(Value(key), lo->second).ok());
        reference.erase(lo);
      } else {
        EXPECT_EQ(index.Erase(Value(key), 424242).code(),
                  StatusCode::kNotFound);
      }
    } else {
      Result<std::vector<ObjectId>> hits = index.Lookup(Value(key));
      ASSERT_TRUE(hits.ok());
      auto [lo, hi] = reference.equal_range(key);
      EXPECT_EQ(hits->size(),
                static_cast<size_t>(std::distance(lo, hi)))
          << "key " << key << " at op " << op;
    }
  }
  EXPECT_EQ(index.size(), reference.size());
  // Final full verification, including range-scan order.
  int64_t prev_key = -1;
  size_t scanned = 0;
  ASSERT_TRUE(index
                  .RangeScan(Value(), Value(),
                             [&](const Value& k, ObjectId) {
                               EXPECT_GE(k.AsInt64(), prev_key);
                               prev_key = k.AsInt64();
                               ++scanned;
                             })
                  .ok());
  EXPECT_EQ(scanned, reference.size());
}

TEST(BTreeFuzzTest, AdversarialInsertionOrders) {
  // Ascending, descending, and organ-pipe orders must all produce correct
  // trees (splits exercise different paths).
  for (int mode = 0; mode < 3; ++mode) {
    BTreeIndex index(ValueType::kInt64, 4);
    const int n = 500;
    for (int i = 0; i < n; ++i) {
      int64_t key;
      switch (mode) {
        case 0:
          key = i;
          break;
        case 1:
          key = n - i;
          break;
        default:
          key = (i % 2 == 0) ? i / 2 : n - i / 2;
          break;
      }
      ASSERT_TRUE(index.Insert(Value(key), static_cast<ObjectId>(i)).ok());
    }
    EXPECT_EQ(index.size(), static_cast<size_t>(n));
    size_t scanned = 0;
    int64_t prev = -1;
    ASSERT_TRUE(index
                    .RangeScan(Value(), Value(),
                               [&](const Value& k, ObjectId) {
                                 EXPECT_GE(k.AsInt64(), prev);
                                 prev = k.AsInt64();
                                 ++scanned;
                               })
                    .ok());
    EXPECT_EQ(scanned, static_cast<size_t>(n)) << "mode " << mode;
  }
}

}  // namespace
}  // namespace fuzzydb
