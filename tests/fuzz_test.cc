// Robustness fuzzing: randomized hostile inputs must produce error Statuses
// (never crashes, hangs, or silent corruption).

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "middleware/combined.h"
#include "middleware/join.h"
#include "middleware/optimizer.h"
#include "middleware/parallel.h"
#include "middleware/threshold.h"
#include "relational/btree.h"
#include "server/query_server.h"
#include "sim/experiment.h"
#include "sim/workload.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace fuzzydb {
namespace {

TEST(SqlFuzzTest, RandomBytesNeverCrashTheLexer) {
  Rng rng(1301);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.NextBounded(60);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.NextBounded(96) + 32));
    }
    Result<std::vector<Token>> tokens = Lex(input);  // ok or error, never UB
    if (tokens.ok()) {
      EXPECT_EQ(tokens->back().type, TokenType::kEnd);
    }
  }
}

TEST(SqlFuzzTest, RandomTokenSoupNeverCrashesTheParser) {
  // Well-lexed but structurally random statements.
  static const char* kFragments[] = {
      "SELECT", "EXPLAIN", "TOP",    "FROM",  "WHERE", "AND",  "OR",
      "NOT",    "USING",   "WEIGHTS", "VIA",  "(",     ")",    ",",
      "=",      "~",       ";",      "5",     "0.5",   "ident", "'str'",
      "min",    "owa",     "fagin"};
  Rng rng(1303);
  size_t parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    size_t len = 1 + rng.NextBounded(16);
    for (size_t i = 0; i < len; ++i) {
      input += kFragments[rng.NextBounded(std::size(kFragments))];
      input += " ";
    }
    Result<SelectStatement> stmt = ParseSelect(input);
    if (stmt.ok()) {
      ++parsed_ok;
      EXPECT_NE(stmt->query, nullptr);
      EXPECT_GE(stmt->k, 1u);
    }
  }
  // Sanity: the harness occasionally produces valid statements too.
  (void)parsed_ok;
}

TEST(SqlFuzzTest, DeeplyNestedParenthesesParse) {
  std::string deep = "SELECT TOP 1 FROM db WHERE ";
  for (int i = 0; i < 200; ++i) deep += "(";
  deep += "a~'1'";
  for (int i = 0; i < 200; ++i) deep += ")";
  Result<SelectStatement> stmt = ParseSelect(deep);
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->query->kind(), Query::Kind::kAtomic);
}

TEST(BTreeFuzzTest, MixedInsertEraseLookupAgainstReference) {
  Rng rng(1307);
  BTreeIndex index(ValueType::kInt64, 6);
  std::multimap<int64_t, ObjectId> reference;
  for (int op = 0; op < 20000; ++op) {
    int64_t key = rng.NextInt(0, 80);
    double dice = rng.NextDouble();
    if (dice < 0.6) {
      ObjectId id = static_cast<ObjectId>(op);
      ASSERT_TRUE(index.Insert(Value(key), id).ok());
      reference.emplace(key, id);
    } else if (dice < 0.85 && !reference.empty()) {
      // Erase a random existing posting of this key, if any.
      auto [lo, hi] = reference.equal_range(key);
      if (lo != hi) {
        ASSERT_TRUE(index.Erase(Value(key), lo->second).ok());
        reference.erase(lo);
      } else {
        EXPECT_EQ(index.Erase(Value(key), 424242).code(),
                  StatusCode::kNotFound);
      }
    } else {
      Result<std::vector<ObjectId>> hits = index.Lookup(Value(key));
      ASSERT_TRUE(hits.ok());
      auto [lo, hi] = reference.equal_range(key);
      EXPECT_EQ(hits->size(),
                static_cast<size_t>(std::distance(lo, hi)))
          << "key " << key << " at op " << op;
    }
  }
  EXPECT_EQ(index.size(), reference.size());
  // Final full verification, including range-scan order.
  int64_t prev_key = -1;
  size_t scanned = 0;
  ASSERT_TRUE(index
                  .RangeScan(Value(), Value(),
                             [&](const Value& k, ObjectId) {
                               EXPECT_GE(k.AsInt64(), prev_key);
                               prev_key = k.AsInt64();
                               ++scanned;
                             })
                  .ok());
  EXPECT_EQ(scanned, reference.size());
}

TEST(BTreeFuzzTest, AdversarialInsertionOrders) {
  // Ascending, descending, and organ-pipe orders must all produce correct
  // trees (splits exercise different paths).
  for (int mode = 0; mode < 3; ++mode) {
    BTreeIndex index(ValueType::kInt64, 4);
    const int n = 500;
    for (int i = 0; i < n; ++i) {
      int64_t key;
      switch (mode) {
        case 0:
          key = i;
          break;
        case 1:
          key = n - i;
          break;
        default:
          key = (i % 2 == 0) ? i / 2 : n - i / 2;
          break;
      }
      ASSERT_TRUE(index.Insert(Value(key), static_cast<ObjectId>(i)).ok());
    }
    EXPECT_EQ(index.size(), static_cast<size_t>(n));
    size_t scanned = 0;
    int64_t prev = -1;
    ASSERT_TRUE(index
                    .RangeScan(Value(), Value(),
                               [&](const Value& k, ObjectId) {
                                 EXPECT_GE(k.AsInt64(), prev);
                                 prev = k.AsInt64();
                                 ++scanned;
                               })
                    .ok());
    EXPECT_EQ(scanned, static_cast<size_t>(n)) << "mode " << mode;
  }
}

// A hostile single-threaded TaskExecutor for the prefetch layer: accepted
// tasks land in a pending list and run in seeded-random order at
// seeded-random moments — some immediately, some long after the work that
// scheduled them finished, the rest at destruction. Per the TaskExecutor
// contract every task runs exactly once; everything else (order, delay) is
// adversarial. PrefetchSource must deliver the exact sorted stream anyway,
// because its progress never depends on the executor running anything.
class ShuffledExecutor final : public TaskExecutor {
 public:
  explicit ShuffledExecutor(uint64_t seed) : rng_(seed) {}
  ~ShuffledExecutor() override { Drain(); }

  void Schedule(std::function<void()> task) override {
    pending_.push_back(std::move(task));
    while (!pending_.empty() && rng_.NextDouble() < 0.4) {
      RunRandomPending();
    }
  }

  /// Runs everything still deferred (tasks may schedule follow-ups, which
  /// also run).
  void Drain() {
    while (!pending_.empty()) RunRandomPending();
  }

 private:
  void RunRandomPending() {
    size_t i = rng_.NextBounded(pending_.size());
    std::function<void()> task = std::move(pending_[i]);
    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(i));
    task();  // may re-enter Schedule; the list is already consistent
  }

  Rng rng_;
  std::vector<std::function<void()>> pending_;
};

TEST(ParallelFuzzTest, PrefetchStreamSurvivesHostileSchedules) {
  // Under every shuffled schedule, the stream a consumer pops from
  // PrefetchSource — threaded through CountingSource so the sorted-order
  // contract check is armed in checks builds — must equal the inner list.
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(4200 + seed);
    size_t n = 1 + rng.NextBounded(120);
    Workload w = IndependentUniform(&rng, n, 1);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    VectorSource& inner = (*sources)[0];

    ShuffledExecutor executor(9000 + seed);
    size_t depth = 1 + rng.NextBounded(16);
    PrefetchSource pf(&inner, depth, &executor);
    AccessCost cost;
    CountingSource counted(&pf, &cost);
    counted.RestartSorted();

    std::vector<GradedObject> streamed;
    while (std::optional<GradedObject> next = counted.NextSorted()) {
      streamed.push_back(*next);
      // Occasionally rewind mid-stream; the replayed stream must restart
      // from the top.
      if (rng.NextDouble() < 0.02) {
        counted.RestartSorted();
        streamed.clear();
      }
    }
    EXPECT_EQ(streamed, inner.sorted_items())
        << "seed " << seed << " depth " << depth;
    EXPECT_GE(cost.sorted, inner.sorted_items().size()) << "seed " << seed;
  }
}

TEST(ParallelFuzzTest, ParallelTaMatchesSerialUnderHostileSchedules) {
  // Full-algorithm determinism under the hostile scheduler: TA with a
  // shuffled-executor prefetch pipeline returns the serial answer and the
  // serial per-source consumed counts, every seed.
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(5200 + seed);
    size_t n = 50 + rng.NextBounded(200);
    size_t m = 2 + rng.NextBounded(3);
    Workload w = (seed % 2 == 0) ? IndependentUniform(&rng, n, m)
                                 : QuantizedUniform(&rng, n, m, 3);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    size_t k = 1 + rng.NextBounded(8);

    Result<TopKResult> serial = ThresholdTopK(ptrs, *MinRule(), k);
    ASSERT_TRUE(serial.ok());

    ShuffledExecutor executor(7700 + seed);
    ParallelOptions options;
    options.prefetch_depth = 1 + rng.NextBounded(16);
    options.executor = &executor;
    Result<TopKResult> parallel = ThresholdTopK(ptrs, *MinRule(), k, options);
    ASSERT_TRUE(parallel.ok());

    ASSERT_EQ(serial->items.size(), parallel->items.size()) << seed;
    for (size_t r = 0; r < serial->items.size(); ++r) {
      EXPECT_EQ(serial->items[r].id, parallel->items[r].id) << seed;
      EXPECT_EQ(serial->items[r].grade, parallel->items[r].grade) << seed;
    }
    ASSERT_EQ(serial->per_source.size(), parallel->per_source.size());
    for (size_t j = 0; j < serial->per_source.size(); ++j) {
      EXPECT_EQ(serial->per_source[j].sorted, parallel->per_source[j].sorted)
          << "seed " << seed << " source " << j;
      EXPECT_EQ(serial->per_source[j].random, parallel->per_source[j].random)
          << "seed " << seed << " source " << j;
    }
  }
}

TEST(ParallelFuzzTest, ParallelCaMatchesSerialUnderHostileSchedules) {
  // CA's mixed shape — NRA-style rounds plus a batched random-access
  // resolution every h rounds — under the hostile scheduler: items, grades,
  // and per-source consumed counts must match serial for every seed, h,
  // and depth, including truncated/empty sources.
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(6200 + seed);
    size_t n = 50 + rng.NextBounded(200);
    size_t m = 2 + rng.NextBounded(3);
    Workload w = (seed % 2 == 0) ? IndependentUniform(&rng, n, m)
                                 : QuantizedUniform(&rng, n, m, 3);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    if (seed % 5 == 4) {
      // Unequal/empty lists: one full, one short, the rest empty.
      std::vector<size_t> lengths(m, 0);
      lengths[0] = n;
      if (m > 1) lengths[1] = 1 + rng.NextBounded(n);
      sources = MakeTruncatedSources(w, lengths);
    }
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    size_t k = 1 + rng.NextBounded(8);
    size_t h = 1 + rng.NextBounded(6);

    Result<TopKResult> serial = CombinedTopK(ptrs, *MinRule(), k, h);
    ASSERT_TRUE(serial.ok());

    ShuffledExecutor executor(8800 + seed);
    ParallelOptions options;
    options.prefetch_depth = 1 + rng.NextBounded(16);
    options.executor = &executor;
    Result<TopKResult> parallel =
        CombinedTopK(ptrs, *MinRule(), k, h, options);
    ASSERT_TRUE(parallel.ok());

    ASSERT_EQ(serial->items.size(), parallel->items.size()) << seed;
    for (size_t r = 0; r < serial->items.size(); ++r) {
      EXPECT_EQ(serial->items[r].id, parallel->items[r].id) << seed;
      EXPECT_EQ(serial->items[r].grade, parallel->items[r].grade) << seed;
    }
    ASSERT_EQ(serial->per_source.size(), parallel->per_source.size());
    for (size_t j = 0; j < serial->per_source.size(); ++j) {
      EXPECT_EQ(serial->per_source[j].sorted, parallel->per_source[j].sorted)
          << "seed " << seed << " h " << h << " source " << j;
      EXPECT_EQ(serial->per_source[j].random, parallel->per_source[j].random)
          << "seed " << seed << " h " << h << " source " << j;
    }
  }
}

TEST(ParallelFuzzTest, ParallelJoinMatchesSerialUnderHostileSchedules) {
  // The join pipeline under the hostile scheduler: the emitted stream of
  // join(A, B) with shuffled-executor prefetch must be bit-identical to the
  // serial stream for every seed and depth.
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(7300 + seed);
    size_t n = 30 + rng.NextBounded(150);
    Workload w = (seed % 2 == 0) ? IndependentUniform(&rng, n, 2)
                                 : QuantizedUniform(&rng, n, 2, 3);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    size_t emit = 1 + rng.NextBounded(20);

    auto drain = [&](const ParallelOptions& options) {
      Result<TopKJoinSource> join = TopKJoinSource::Create(
          &(*sources)[0], &(*sources)[1], MinRule(), "fuzz-join", options);
      EXPECT_TRUE(join.ok());
      std::vector<GradedObject> out;
      while (out.size() < emit) {
        std::optional<GradedObject> next = join->NextSorted();
        if (!next.has_value()) break;
        out.push_back(*next);
      }
      return out;
    };

    std::vector<GradedObject> serial = drain(ParallelOptions{});
    ShuffledExecutor executor(9900 + seed);
    ParallelOptions options;
    options.prefetch_depth = 1 + rng.NextBounded(16);
    options.executor = &executor;
    std::vector<GradedObject> parallel = drain(options);

    ASSERT_EQ(serial.size(), parallel.size()) << seed;
    for (size_t r = 0; r < serial.size(); ++r) {
      EXPECT_EQ(serial[r].id, parallel[r].id) << "seed " << seed;
      EXPECT_EQ(serial[r].grade, parallel[r].grade) << "seed " << seed;
    }
  }
}

// --- Server fuzzing ---------------------------------------------------------

// One fuzz query: its private sources (VectorSource carries cursor state,
// never shared across in-flight queries), resolver, shape, and submission.
struct FuzzQuery {
  std::unique_ptr<std::vector<VectorSource>> sources;
  SourceResolver resolver;
  QueryPtr query;
  size_t k = 1;
  uint64_t budget = 0;
  Submission submission;
  bool cancelled = false;
};

FuzzQuery MakeFuzzQuery(const Workload& w, Rng* rng) {
  FuzzQuery fq;
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  EXPECT_TRUE(sources.ok());
  fq.sources =
      std::make_unique<std::vector<VectorSource>>(std::move(*sources));
  std::vector<VectorSource>* raw = fq.sources.get();
  fq.resolver = [raw](const Query& atom) -> Result<GradedSource*> {
    if (atom.attribute() == "A") return &(*raw)[0];
    if (atom.attribute() == "B") return &(*raw)[1];
    return &(*raw)[2];
  };
  switch (rng->NextBounded(4)) {
    case 0:
      fq.query =
          Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
      break;
    case 1:
      fq.query = Query::Or({Query::Atomic("A", "t"), Query::Atomic("B", "t"),
                            Query::Atomic("C", "t")});
      break;
    case 2:
      fq.query = Query::And(
          {Query::Atomic("A", "t"),
           Query::Or({Query::Atomic("B", "t"), Query::Atomic("C", "t")})});
      break;
    default:
      fq.query = Query::Atomic("A", "t");
      break;
  }
  fq.k = 1 + rng->NextBounded(8);
  if (rng->NextDouble() < 0.4) fq.budget = 1 + rng->NextBounded(40);
  return fq;
}

// The server's execution path run serially with the same budget — what
// every completed (uncancelled) fuzz answer must match bit for bit.
ExecutionResult ServerSerialReference(const FuzzQuery& fq, const Workload& w) {
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  EXPECT_TRUE(sources.ok());
  auto raw = std::make_shared<std::vector<VectorSource>>(std::move(*sources));
  SourceResolver resolver = [raw](const Query& atom) -> Result<GradedSource*> {
    if (atom.attribute() == "A") return &(*raw)[0];
    if (atom.attribute() == "B") return &(*raw)[1];
    return &(*raw)[2];
  };
  Result<PlanChoice> plan = ChoosePlan(*fq.query, w.n(), fq.k, CostModel{});
  EXPECT_TRUE(plan.ok());
  ExecutorOptions opts;
  opts.algorithm = plan->algorithm;
  opts.combined_period = plan->combined_period;
  opts.sorted_access_budget = fq.budget;
  Result<ExecutionResult> r = ExecuteTopK(fq.query, resolver, fq.k, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ServerFuzzTest, HostileSchedulesPreserveDeterminismUnderSubmitCancel) {
  // The server driven by the hostile single-threaded scheduler: seeded
  // schedules interleave submission, random cancellation, and deferred
  // execution. Every ticket completes exactly once; every run that reached
  // its halting condition (or its budget) matches the serial reference bit
  // for bit; every cancelled run matches a serial run with a pre-cancelled
  // governor (cancellation is single-threaded here, so it always lands
  // between tasks — before execution starts, or after it finished).
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(11000 + seed);
    size_t n = 40 + rng.NextBounded(120);
    Workload w = (seed % 2 == 0) ? IndependentUniform(&rng, n, 3)
                                 : QuantizedUniform(&rng, n, 3, 4);

    ShuffledExecutor executor(12000 + seed);
    QueryServerOptions options;
    options.executor = &executor;
    options.cache_results = false;  // every query must execute
    QueryServer server(options);

    std::vector<FuzzQuery> queries;
    queries.reserve(30);
    for (int q = 0; q < 30; ++q) {
      queries.push_back(MakeFuzzQuery(w, &rng));
      FuzzQuery& fq = queries.back();
      SubmitOptions submit;
      submit.sorted_access_budget = fq.budget;
      Result<Submission> sub =
          server.Submit(fq.query, fq.k, fq.resolver, submit);
      ASSERT_TRUE(sub.ok()) << sub.status().ToString();
      fq.submission = std::move(sub).value();
      // Randomly cancel an earlier (possibly already-run) query.
      if (rng.NextDouble() < 0.3) {
        FuzzQuery& victim = queries[rng.NextBounded(queries.size())];
        if (victim.submission.governor != nullptr && !victim.cancelled) {
          victim.submission.governor->Cancel();
          victim.cancelled = true;
        }
      }
    }
    executor.Drain();  // must come before server.Drain(): it runs the tasks
    server.Drain();

    for (size_t q = 0; q < queries.size(); ++q) {
      const FuzzQuery& fq = queries[q];
      ASSERT_TRUE(fq.submission.ticket->done()) << "seed " << seed;
      const ServedResult& got = fq.submission.ticket->Wait();
      ASSERT_TRUE(got.status.ok()) << got.status.ToString();
      const bool was_cancelled =
          got.completion.code() == StatusCode::kCancelled;
      EXPECT_TRUE(fq.cancelled || !was_cancelled) << "seed " << seed;

      ExecutionResult want = ServerSerialReference(fq, w);
      if (was_cancelled) {
        // Cancel landed before execution: the reference is a run whose
        // governor was cancelled up front.
        Result<PlanChoice> plan =
            ChoosePlan(*fq.query, w.n(), fq.k, CostModel{});
        ASSERT_TRUE(plan.ok());
        ExecutorOptions opts;
        opts.algorithm = plan->algorithm;
        opts.combined_period = plan->combined_period;
        opts.governor = std::make_shared<AccessGovernor>(fq.budget);
        opts.governor->Cancel();
        Result<std::vector<VectorSource>> ref_sources = w.MakeSources();
        ASSERT_TRUE(ref_sources.ok());
        auto raw = std::make_shared<std::vector<VectorSource>>(
            std::move(*ref_sources));
        SourceResolver resolver =
            [raw](const Query& atom) -> Result<GradedSource*> {
          if (atom.attribute() == "A") return &(*raw)[0];
          if (atom.attribute() == "B") return &(*raw)[1];
          return &(*raw)[2];
        };
        Result<ExecutionResult> ref =
            ExecuteTopK(fq.query, resolver, fq.k, opts);
        ASSERT_TRUE(ref.ok());
        want = std::move(ref).value();
      }
      ASSERT_EQ(got.topk.items.size(), want.topk.items.size())
          << "seed " << seed << " query " << q;
      for (size_t r = 0; r < want.topk.items.size(); ++r) {
        EXPECT_EQ(got.topk.items[r].id, want.topk.items[r].id)
            << "seed " << seed << " query " << q;
        EXPECT_EQ(got.topk.items[r].grade, want.topk.items[r].grade)
            << "seed " << seed << " query " << q;
      }
      EXPECT_EQ(got.topk.cost.sorted, want.topk.cost.sorted)
          << "seed " << seed << " query " << q;
      EXPECT_EQ(got.topk.cost.random, want.topk.cost.random)
          << "seed " << seed << " query " << q;
    }
  }
}

TEST(ServerFuzzTest, RealThreadsConcurrentSubmitCancelDrain) {
  // Real worker threads, concurrent cancellation from another thread.
  // Cancel timing is racy by design, so the assertions split: queries no
  // one cancelled must match serial bit for bit; cancelled ones must
  // complete with a sane partial answer (exactly once, valid grades,
  // completion one of OK/Cancelled/ResourceExhausted).
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(13000 + seed);
    size_t n = 40 + rng.NextBounded(120);
    Workload w = (seed % 2 == 0) ? IndependentUniform(&rng, n, 3)
                                 : QuantizedUniform(&rng, n, 3, 4);

    ThreadPool pool(3, 256);
    QueryServerOptions options;
    options.pool = &pool;
    options.cache_results = false;
    QueryServer server(options);

    std::vector<FuzzQuery> queries;
    queries.reserve(40);
    for (int q = 0; q < 40; ++q) queries.push_back(MakeFuzzQuery(w, &rng));

    // Submit everything, snapshotting the even-indexed governors (the
    // cancel candidates; odd ones are left alone so their determinism can
    // be asserted). The canceller then races *execution*, not submission —
    // cancellation synchronizes through the governor's atomics alone.
    for (FuzzQuery& fq : queries) {
      SubmitOptions submit;
      submit.sorted_access_budget = fq.budget;
      Result<Submission> sub =
          server.Submit(fq.query, fq.k, fq.resolver, submit);
      ASSERT_TRUE(sub.ok()) << sub.status().ToString();
      fq.submission = std::move(sub).value();
    }
    std::vector<std::shared_ptr<AccessGovernor>> victims;
    for (size_t q = 0; q < queries.size(); q += 2) {
      if (queries[q].submission.governor != nullptr) {
        victims.push_back(queries[q].submission.governor);
      }
    }
    std::thread canceller([&] {
      Rng crng(14000 + seed);
      for (int shots = 0; shots < 200 && !victims.empty(); ++shots) {
        victims[crng.NextBounded(victims.size())]->Cancel();
        std::this_thread::yield();
      }
    });
    canceller.join();
    server.Drain();

    for (size_t q = 0; q < queries.size(); ++q) {
      const FuzzQuery& fq = queries[q];
      ASSERT_TRUE(fq.submission.ticket->done()) << "seed " << seed;
      const ServedResult& got = fq.submission.ticket->Wait();
      ASSERT_TRUE(got.status.ok()) << got.status.ToString();
      for (const GradedObject& item : got.topk.items) {
        EXPECT_GE(item.grade, 0.0);
        EXPECT_LE(item.grade, 1.0);
      }
      EXPECT_LE(got.topk.items.size(), fq.k);
      const StatusCode code = got.completion.code();
      EXPECT_TRUE(code == StatusCode::kOk || code == StatusCode::kCancelled ||
                  code == StatusCode::kResourceExhausted)
          << got.completion.ToString();
      if (q % 2 == 1) {
        // Never cancelled: full determinism holds.
        EXPECT_NE(code, StatusCode::kCancelled);
        ExecutionResult want = ServerSerialReference(fq, w);
        ASSERT_EQ(got.topk.items.size(), want.topk.items.size())
            << "seed " << seed << " query " << q;
        for (size_t r = 0; r < want.topk.items.size(); ++r) {
          EXPECT_EQ(got.topk.items[r].id, want.topk.items[r].id)
              << "seed " << seed << " query " << q;
          EXPECT_EQ(got.topk.items[r].grade, want.topk.items[r].grade)
              << "seed " << seed << " query " << q;
        }
        EXPECT_EQ(got.topk.cost.sorted, want.topk.cost.sorted)
            << "seed " << seed << " query " << q;
      }
    }
  }
}

}  // namespace
}  // namespace fuzzydb
