// Tests for the paper-invariant contract layer (DESIGN §3d): the
// FUZZYDB_DCHECK/FUZZYDB_INVARIANT macros, the src/analysis property
// auditors on every shipped scoring function / norm pair / cascade
// configuration, and — the negative paths — proof that a deliberately
// broken scorer, an inflated cascade bound, and a mis-sorted source are
// all detected with actionable messages.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "analysis/cascade_audit.h"
#include "analysis/norm_audit.h"
#include "analysis/scoring_audit.h"
#include "analysis/source_audit.h"
#include "common/contract.h"
#include "common/random.h"
#include "core/scoring.h"
#include "image/embedding_store.h"
#include "image/quadratic_distance.h"
#include "middleware/cost.h"
#include "middleware/threshold.h"
#include "middleware/vector_source.h"

namespace fuzzydb {
namespace {

// ---------------------------------------------------------------------------
// Contract macros.

int g_violations = 0;
std::string g_last_message;
std::vector<std::string> g_messages;

void CountingHandler(const char* /*file*/, int /*line*/, const char* /*expr*/,
                     const std::string& message) {
  ++g_violations;
  g_last_message = message;
  g_messages.push_back(message);
}

class ContractHandlerScope {
 public:
  ContractHandlerScope() : prev_(SetContractViolationHandler(CountingHandler)) {
    g_violations = 0;
    g_last_message.clear();
    g_messages.clear();
  }
  ~ContractHandlerScope() { SetContractViolationHandler(prev_); }

 private:
  ContractViolationHandler prev_;
};

TEST(ContractMacroTest, DcheckFiresExactlyWhenChecksAreCompiledIn) {
  ContractHandlerScope scope;
  FUZZYDB_DCHECK(1 + 1 == 3, "arithmetic is broken");
  EXPECT_EQ(g_violations, ContractChecksEnabled() ? 1 : 0);
  if (ContractChecksEnabled()) {
    EXPECT_EQ(g_last_message, "arithmetic is broken");
  }
  FUZZYDB_DCHECK(true, "a passing check never fires");
  FUZZYDB_INVARIANT(2 < 3, "nor does a passing invariant");
  EXPECT_EQ(g_violations, ContractChecksEnabled() ? 1 : 0);
}

TEST(ContractMacroTest, DisabledChecksEvaluateNothing) {
  if (ContractChecksEnabled()) GTEST_SKIP() << "build has checks on";
  int evaluations = 0;
  FUZZYDB_DCHECK((++evaluations, true), "side effect must not run");
  FUZZYDB_INVARIANT((++evaluations, false), "not even a failing one");
  EXPECT_EQ(evaluations, 0);
}

// ---------------------------------------------------------------------------
// Positive paths: every shipped contract holds.

TEST(NormAuditTest, AllRegisteredNormPairsSatisfyTheAxioms) {
  AuditReport report = AuditRegisteredNormPairs();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks_run(), 1000u);
  EXPECT_TRUE(report.ToStatus().ok());
}

TEST(ScoringAuditTest, AllShippedRulesHonorTheirDeclarations) {
  AuditReport report = AuditShippedScoringRules();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks_run(), 10000u);
}

class CascadeAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1234);
    palette_ = Palette::Uniform(27, &rng);
    qfd_ = *QuadraticFormDistance::Create(palette_);
    std::vector<Histogram> database;
    for (size_t i = 0; i < 80; ++i) {
      database.push_back(RandomHistogram(&rng, 27));
    }
    store_ = *EmbeddingStore::Build(qfd_, database);
  }

  Palette palette_;
  QuadraticFormDistance qfd_;
  EmbeddingStore store_;
};

TEST_F(CascadeAuditTest, EveryPrefixLevelLowerBoundsTheExactDistance) {
  CascadeAuditOptions options;
  options.pairs = 64;
  AuditReport report = AuditCascadeLevels(qfd_, /*levels=*/{}, options);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(CascadeAuditTest, CascadeAnswersMatchExactKnnBitForBit) {
  CascadeAuditOptions options;
  options.pairs = 32;
  AuditReport report =
      AuditCascadeEquivalence(store_, /*k=*/7, CascadeOptions{3, 4}, options);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(CascadeAuditTest, QuantizedTierLowerBoundsEveryPair) {
  CascadeAuditOptions options;
  options.pairs = 32;
  AuditReport report = AuditQuantizedLowerBound(store_, options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // 4 queries x 80 rows, plus the precondition check.
  EXPECT_GT(report.checks_run(), 300u);
}

TEST_F(CascadeAuditTest, QuantizedAuditRejectsAStoreWithoutTheCompanion) {
  // A hand-assembled store that never calls BuildQuantized(): the audit
  // must refuse the precondition, not vacuously pass.
  Rng rng(4321);
  EmbeddingStore bare(4, 27);
  for (size_t i = 0; i < 4; ++i) {
    qfd_.EmbedInto(RandomHistogram(&rng, 27), bare.MutableRow(i));
  }
  AuditReport report = AuditQuantizedLowerBound(bare);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.findings().size(), 1u);
  EXPECT_EQ(report.findings()[0].contract, "precondition");
}

TEST_F(CascadeAuditTest, GenuineLowerBoundPassesTheFilterAudit) {
  // The 3-dim prefix of the embedding is the paper's formula (2) filter.
  auto cheap = [this](const Histogram& x, const Histogram& y) {
    std::vector<double> ex = qfd_.Embed(x);
    std::vector<double> ey = qfd_.Embed(y);
    double sum = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      const double d = ex[j] - ey[j];
      sum += d * d;
    }
    return std::sqrt(sum);
  };
  auto exact = [this](const Histogram& x, const Histogram& y) {
    return qfd_.Distance(x, y);
  };
  AuditReport report =
      AuditFilterLowerBound("prefix-3 filter", cheap, exact, /*bins=*/27);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(SourceAuditTest, VectorSourcePassesTheAccessContract) {
  Rng rng(99);
  std::vector<GradedObject> items;
  for (ObjectId id = 1; id <= 200; ++id) {
    items.push_back({id, rng.NextDouble()});
  }
  Result<VectorSource> source = VectorSource::Create(items, "uniform");
  ASSERT_TRUE(source.ok());
  AuditReport report = AuditSortedAccess(&*source);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // The audit must leave the source rewound and reusable.
  EXPECT_TRUE(source->NextSorted().has_value());
}

// ---------------------------------------------------------------------------
// Negative paths: violated contracts are detected, with actionable messages.

TEST(ScoringAuditTest, NonMonotoneScorerClaimingMonotonicityIsRejected) {
  // "Contrarian" scores high exactly when the first component is low — a
  // textbook monotonicity violation hiding behind a monotone claim.
  ScoringRulePtr broken = UserDefinedRule(
      "contrarian",
      [](std::span<const double> scores) { return 1.0 - scores[0]; },
      /*claims_monotone=*/true, /*claims_strict=*/false);
  AuditReport report = AuditScoringRule(*broken);
  ASSERT_FALSE(report.ok());
  const std::string text = report.ToString();
  // Actionable: names the rule, the violated contract, and a witness pair.
  EXPECT_NE(text.find("contrarian"), std::string::npos) << text;
  EXPECT_NE(text.find("monotonicity"), std::string::npos) << text;
  EXPECT_NE(text.find("pointwise"), std::string::npos) << text;
  Status status = report.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ScoringAuditTest, NonStrictScorerClaimingStrictnessIsRejected) {
  // max is monotone but not strict; claim strictness anyway.
  ScoringRulePtr broken = UserDefinedRule(
      "max-claiming-strict",
      [](std::span<const double> scores) {
        return *std::max_element(scores.begin(), scores.end());
      },
      /*claims_monotone=*/true, /*claims_strict=*/true);
  AuditReport report = AuditScoringRule(*broken);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("strict"), std::string::npos)
      << report.ToString();
}

TEST(CascadeNegativeTest, InflatedBoundIsRejectedWithAWitness) {
  Rng rng(4321);
  Palette palette = Palette::Uniform(16, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  // A "cheap" level that overshoots the exact distance by 5% — it would
  // falsely dismiss true neighbors, voiding the no-false-dismissal claim.
  auto inflated = [&qfd](const Histogram& x, const Histogram& y) {
    return 1.05 * qfd.Distance(x, y);
  };
  auto exact = [&qfd](const Histogram& x, const Histogram& y) {
    return qfd.Distance(x, y);
  };
  AuditReport report =
      AuditFilterLowerBound("inflated level", inflated, exact, /*bins=*/16);
  ASSERT_FALSE(report.ok());
  const std::string text = report.ToString();
  EXPECT_NE(text.find("lower-bound"), std::string::npos) << text;
  EXPECT_NE(text.find("falsely dismiss"), std::string::npos) << text;
  EXPECT_EQ(report.ToStatus().code(), StatusCode::kFailedPrecondition);
}

// A source whose stream violates the grade-descending contract.
class MisSortedSource final : public GradedSource {
 public:
  size_t Size() const override { return 3; }
  std::optional<GradedObject> NextSorted() override {
    // 0.9 after 0.5: the violation sits at the second read so even a
    // k-item-halting consumer must stream across it.
    static constexpr double kGrades[] = {0.5, 0.9, 0.2};
    if (pos_ >= 3) return std::nullopt;
    GradedObject obj{pos_ + 1, kGrades[pos_]};
    ++pos_;
    return obj;
  }
  void RestartSorted() override { pos_ = 0; }
  double RandomAccess(ObjectId id) override {
    static constexpr double kGrades[] = {0.5, 0.9, 0.2};
    return (id >= 1 && id <= 3) ? kGrades[id - 1] : 0.0;
  }
  std::vector<GradedObject> AtLeast(double threshold) override {
    std::vector<GradedObject> out;
    for (ObjectId id = 1; id <= 3; ++id) {
      if (RandomAccess(id) >= threshold) out.push_back({id, RandomAccess(id)});
    }
    return out;
  }
  std::string name() const override { return "mis-sorted"; }

 private:
  ObjectId pos_ = 0;
};

TEST(SourceAuditTest, MisSortedStreamIsRejected) {
  MisSortedSource source;
  AuditReport report = AuditSortedAccess(&source);
  ASSERT_FALSE(report.ok());
  const std::string text = report.ToString();
  EXPECT_NE(text.find("sorted order"), std::string::npos) << text;
  EXPECT_NE(text.find("grade-descending"), std::string::npos) << text;
}

TEST(InstrumentationTest, MisSortedSourceTripsTheMiddlewareContract) {
  // End-to-end: the CountingSource wrapper inside TA must flag the broken
  // stream when contract checks are compiled in.
  if (!ContractChecksEnabled()) {
    GTEST_SKIP() << "contract checks compiled out in this build";
  }
  ContractHandlerScope scope;
  MisSortedSource broken;
  std::vector<GradedSource*> sources{&broken};
  Result<TopKResult> result = ThresholdTopK(sources, *MinRule(), 2);
  EXPECT_GE(g_violations, 1);
  // Both instrumented layers flag the broken stream: the CountingSource
  // wrapper (order violation) and TA itself (its threshold rose).
  auto any_contains = [](const std::string& needle) {
    for (const std::string& m : g_messages) {
      if (m.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(any_contains("sorted-access order"))
      << "messages: " << ::testing::PrintToString(g_messages);
  EXPECT_TRUE(any_contains("threshold rose"))
      << "messages: " << ::testing::PrintToString(g_messages);
}

}  // namespace
}  // namespace fuzzydb
