#include "common/status.h"

#include <gtest/gtest.h>

namespace fuzzydb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status Inner(bool fail) {
  if (fail) return Status::Internal("inner failed");
  return Status::OK();
}

Status Outer(bool fail) {
  FUZZYDB_RETURN_NOT_OK(Inner(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace fuzzydb
