// Cross-algorithm property sweep: for MANY random workloads, rules (t-norms,
// means, weighted rules, OWA, composite query trees), and k values, every
// algorithm must produce a valid top-k answer and respect its cost
// contract. This is the repo's broadest consistency net.

#include <gtest/gtest.h>

#include "core/equivalence.h"
#include "core/weights.h"
#include "middleware/composite_rule.h"
#include "middleware/disjunction.h"
#include "middleware/fagin.h"
#include "middleware/filtered.h"
#include "middleware/naive.h"
#include "middleware/nra.h"
#include "middleware/threshold.h"
#include "sim/experiment.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

// The serial 3-argument entry points; the alias disambiguates the parallel
// overloads added in DESIGN §3e.
using SerialRunner = Result<TopKResult> (*)(std::span<GradedSource* const>,
                                            const ScoringRule&, size_t);

struct SweepCase {
  std::string name;
  ScoringRulePtr rule;
  size_t m;
};

std::vector<SweepCase> MakeCases() {
  std::vector<SweepCase> cases;
  cases.push_back({"min_m2", MinRule(), 2});
  cases.push_back({"min_m4", MinRule(), 4});
  cases.push_back({"product_m3", TNormRule(TNormKind::kProduct), 3});
  cases.push_back({"einstein_m2", TNormRule(TNormKind::kEinstein), 2});
  cases.push_back({"avg_m3", ArithmeticMeanRule(), 3});
  cases.push_back({"geomean_m2", GeometricMeanRule(), 2});
  cases.push_back({"median_m3", MedianRule(), 3});
  cases.push_back(
      {"weighted_min_m3",
       WeightedRule(MinRule(), *Weighting::Create({0.5, 0.3, 0.2})), 3});
  cases.push_back(
      {"weighted_avg_m2",
       WeightedRule(ArithmeticMeanRule(), *Weighting::Create({0.8, 0.2})),
       2});
  cases.push_back({"owa_m3", OwaRule(*Weighting::Create({0.2, 0.3, 0.5})),
                   3});
  return cases;
}

class AlgorithmSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AlgorithmSweepTest, EveryAlgorithmProducesAValidTopK) {
  const SweepCase& c = GetParam();
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(9000 + seed);
    Workload w = IndependentUniform(&rng, 300, c.m);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    Result<GradedSet> truth = NaiveAllGrades(ptrs, *c.rule);
    ASSERT_TRUE(truth.ok());
    for (size_t k : {1u, 7u, 50u}) {
      Result<TopKResult> naive = NaiveTopK(ptrs, *c.rule, k);
      ASSERT_TRUE(naive.ok());
      EXPECT_TRUE(IsValidTopK(naive->items, *truth, k))
          << c.name << " naive k=" << k;

      Result<TopKResult> fagin = FaginTopK(ptrs, *c.rule, k);
      ASSERT_TRUE(fagin.ok());
      EXPECT_TRUE(IsValidTopK(fagin->items, *truth, k))
          << c.name << " fagin k=" << k;

      Result<TopKResult> ta = ThresholdTopK(ptrs, *c.rule, k);
      ASSERT_TRUE(ta.ok());
      EXPECT_TRUE(IsValidTopK(ta->items, *truth, k))
          << c.name << " ta k=" << k;
      EXPECT_LE(ta->cost.sorted, fagin->cost.sorted)
          << c.name << " ta depth k=" << k;

      Result<TopKResult> filtered = FilteredSimulationTopK(ptrs, *c.rule, k);
      ASSERT_TRUE(filtered.ok());
      EXPECT_TRUE(IsValidTopK(filtered->items, *truth, k))
          << c.name << " filtered k=" << k;

      Result<TopKResult> nra = NoRandomAccessTopK(ptrs, *c.rule, k);
      ASSERT_TRUE(nra.ok());
      EXPECT_EQ(nra->cost.random, 0u) << c.name;
      // NRA certifies set membership: every winner's true grade must be at
      // least the (k)th true grade.
      std::vector<GradedObject> expected = truth->TopK(k);
      ASSERT_EQ(nra->items.size(), expected.size()) << c.name;
      if (!expected.empty()) {
        double kth = expected.back().grade;
        for (const GradedObject& g : nra->items) {
          EXPECT_GE(*truth->GradeOf(g.id), kth - 1e-12)
              << c.name << " nra k=" << k;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rules, AlgorithmSweepTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const auto& info) { return info.param.name; });

TEST(CompositeTreeSweepTest, RandomMonotoneTreesAgreeAcrossAlgorithms) {
  // Random nested AND/OR trees evaluated as one composite rule: A0/TA must
  // agree with naive on every tree.
  Rng tree_rng(777);
  for (int trial = 0; trial < 15; ++trial) {
    QueryPtr tree = RandomMonotoneQuery(&tree_rng, {"A", "B", "C"}, 2);
    size_t m = tree->NumAtoms();
    if (m < 2) continue;
    ScoringRulePtr rule = CompositeQueryRule(tree);

    Rng rng(800 + trial);
    Workload w = IndependentUniform(&rng, 200, m);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
    ASSERT_TRUE(truth.ok());
    for (SerialRunner run : {SerialRunner(FaginTopK), SerialRunner(ThresholdTopK)}) {
      Result<TopKResult> r = run(ptrs, *rule, 5);
      ASSERT_TRUE(r.ok()) << tree->ToString();
      EXPECT_TRUE(IsValidTopK(r->items, *truth, 5)) << tree->ToString();
    }
  }
}

TEST(CorrelatedWorkloadSweepTest, AlgorithmsStayCorrectOffTheIidPath) {
  // Theorem 4.1's COST bound needs independence; CORRECTNESS must not.
  for (double rho : {0.5, 1.0}) {
    Rng rng(850 + static_cast<uint64_t>(rho * 10));
    Workload w = Correlated(&rng, 300, 2, rho);
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
    ASSERT_TRUE(truth.ok());
    for (SerialRunner run : {SerialRunner(FaginTopK), SerialRunner(ThresholdTopK)}) {
      Result<TopKResult> r = run(ptrs, *MinRule(), 10);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(IsValidTopK(r->items, *truth, 10)) << "rho=" << rho;
    }
  }
  // Anti-correlated and adversarial instances.
  Rng rng(860);
  for (Workload w :
       {AntiCorrelated(&rng, 300, 0.05), PathologicalMiddle(300)}) {
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
    ASSERT_TRUE(truth.ok());
    for (SerialRunner run : {SerialRunner(FaginTopK), SerialRunner(ThresholdTopK), SerialRunner(NoRandomAccessTopK)}) {
      Result<TopKResult> r = run(ptrs, *MinRule(), 10);
      ASSERT_TRUE(r.ok());
      // NRA grades may be bounds; check set membership only.
      std::vector<GradedObject> expected = truth->TopK(10);
      double kth = expected.back().grade;
      for (const GradedObject& g : r->items) {
        EXPECT_GE(*truth->GradeOf(g.id), kth - 1e-12);
      }
    }
  }
}

TEST(ZeroOneRelationalSweepTest, MixedCrispAndGradedLists) {
  // The running-example shape: one 0/1 relational list joined with a graded
  // one, across selectivities.
  for (double selectivity : {0.01, 0.1, 0.5}) {
    Rng rng(870 + static_cast<uint64_t>(selectivity * 100));
    const size_t n = 500;
    Workload w = IndependentUniform(&rng, n, 1);
    w.columns.push_back(ZeroOneColumn(&rng, n, selectivity));
    Result<std::vector<VectorSource>> sources = w.MakeSources();
    ASSERT_TRUE(sources.ok());
    std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
    Result<GradedSet> truth = NaiveAllGrades(ptrs, *MinRule());
    ASSERT_TRUE(truth.ok());
    for (SerialRunner run : {SerialRunner(FaginTopK), SerialRunner(ThresholdTopK)}) {
      Result<TopKResult> r = run(ptrs, *MinRule(), 5);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(IsValidTopK(r->items, *truth, 5))
          << "selectivity " << selectivity;
    }
  }
}

}  // namespace
}  // namespace fuzzydb
