// Tests for the selective-conjunct plan (paper §4.1's Artist='Beatles'
// strategy).

#include "middleware/selective.h"

#include <gtest/gtest.h>

#include "middleware/naive.h"
#include "middleware/threshold.h"
#include "sim/experiment.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

// n objects: a 0/1 selective column (given selectivity) + graded columns.
struct Rig {
  Workload workload;
  std::vector<VectorSource> sources;
  std::vector<GradedSource*> ptrs;  // [selective, others...]
};

Rig MakeSetup(size_t n, size_t m, double selectivity, uint64_t seed) {
  Rng rng(seed);
  Rig s;
  s.workload = IndependentUniform(&rng, n, m - 1);
  s.workload.columns.insert(s.workload.columns.begin(),
                            ZeroOneColumn(&rng, n, selectivity));
  s.sources = *s.workload.MakeSources();
  for (VectorSource& src : s.sources) s.ptrs.push_back(&src);
  return s;
}

TEST(ZeroAnnihilationTest, ClassifiesRules) {
  Rng rng(1601);
  EXPECT_TRUE(CheckZeroAnnihilation(*MinRule(), 3, 200, &rng));
  EXPECT_TRUE(
      CheckZeroAnnihilation(*TNormRule(TNormKind::kProduct), 3, 200, &rng));
  EXPECT_TRUE(CheckZeroAnnihilation(*TNormRule(TNormKind::kLukasiewicz), 3,
                                    200, &rng));
  EXPECT_TRUE(CheckZeroAnnihilation(*GeometricMeanRule(), 3, 200, &rng));
  EXPECT_FALSE(CheckZeroAnnihilation(*ArithmeticMeanRule(), 3, 200, &rng));
  EXPECT_FALSE(CheckZeroAnnihilation(*MaxRule(), 3, 200, &rng));
}

TEST(SelectiveProbeTest, MatchesGroundTruthAcrossSelectivities) {
  for (double selectivity : {0.02, 0.1, 0.4}) {
    Rig s = MakeSetup(500, 3, selectivity, 1607);
    ScoringRulePtr min = MinRule();
    Result<GradedSet> truth = NaiveAllGrades(s.ptrs, *min);
    ASSERT_TRUE(truth.ok());
    std::span<GradedSource* const> others(s.ptrs.data() + 1, 2);
    for (size_t k : {1u, 5u, 40u}) {
      Result<TopKResult> r =
          SelectiveProbeTopK(s.ptrs[0], others, *min, k);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(IsValidTopK(r->items, *truth, k))
          << "selectivity " << selectivity << " k " << k;
    }
  }
}

TEST(SelectiveProbeTest, PadsWithZeroGradeObjectsWhenFewMatches) {
  // 5 matches out of 200 but k = 20: the answer holds all matches plus
  // grade-0 filler.
  Rig s = MakeSetup(200, 2, 0.025, 1609);
  ScoringRulePtr min = MinRule();
  std::span<GradedSource* const> others(s.ptrs.data() + 1, 1);
  Result<TopKResult> r = SelectiveProbeTopK(s.ptrs[0], others, *min, 20);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->items.size(), 20u);
  Result<GradedSet> truth = NaiveAllGrades(s.ptrs, *min);
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(IsValidTopK(r->items, *truth, 20));
  size_t zeros = 0;
  for (const GradedObject& g : r->items) zeros += g.grade == 0.0;
  EXPECT_GE(zeros, 15u);
}

TEST(SelectiveProbeTest, BeatsTAOnLowSelectivity) {
  // The paper's point: with few Beatles albums, probing S is much cheaper
  // than merging sorted streams.
  Rig s = MakeSetup(20000, 2, 0.005, 1613);  // 100 matches
  ScoringRulePtr min = MinRule();
  std::span<GradedSource* const> others(s.ptrs.data() + 1, 1);
  Result<TopKResult> probe = SelectiveProbeTopK(s.ptrs[0], others, *min, 10);
  Result<TopKResult> ta = ThresholdTopK(s.ptrs, *min, 10);
  ASSERT_TRUE(probe.ok() && ta.ok());
  // |S| sorted + |S| random = ~200 accesses.
  EXPECT_LE(probe->cost.total(), 2u * 100u + 10u);
  EXPECT_LT(probe->cost.total(), ta->cost.total());
}

TEST(SelectiveProbeTest, RejectsNonAnnihilatingAndNonMonotoneRules) {
  Rig s = MakeSetup(50, 2, 0.2, 1619);
  std::span<GradedSource* const> others(s.ptrs.data() + 1, 1);
  EXPECT_EQ(SelectiveProbeTopK(s.ptrs[0], others, *ArithmeticMeanRule(), 5)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  ScoringRulePtr bad = UserDefinedRule(
      "antitone", [](std::span<const double> x) { return 1.0 - x[0]; },
      false, false);
  EXPECT_EQ(SelectiveProbeTopK(s.ptrs[0], others, *bad, 5).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(SelectiveProbeTopK(nullptr, others, *MinRule(), 5).ok());
  EXPECT_FALSE(SelectiveProbeTopK(s.ptrs[0], others, *MinRule(), 0).ok());
}

TEST(SelectiveProbeTest, WorksWithGradedSelectiveListToo) {
  // The selective list need not be 0/1 — any list whose support is small
  // qualifies (e.g. a pre-filtered similarity list).
  Rng rng(1621);
  const size_t n = 300;
  std::vector<std::vector<double>> columns(2, std::vector<double>(n, 0.0));
  std::vector<ObjectId> ids(n);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = i + 1;
    if (i % 10 == 0) columns[0][i] = 0.5 + 0.5 * rng.NextDouble();
    columns[1][i] = rng.NextDouble();
  }
  Result<std::vector<VectorSource>> sources = MakeSources(ids, columns);
  ASSERT_TRUE(sources.ok());
  std::vector<GradedSource*> ptrs = SourcePtrs(*sources);
  ScoringRulePtr product = TNormRule(TNormKind::kProduct);
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *product);
  ASSERT_TRUE(truth.ok());
  std::span<GradedSource* const> others(ptrs.data() + 1, 1);
  Result<TopKResult> r = SelectiveProbeTopK(ptrs[0], others, *product, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsValidTopK(r->items, *truth, 10));
}

}  // namespace
}  // namespace fuzzydb
