// QueryCache and CanonicalKey tests (DESIGN §3j).
//
// The cache-correctness story has two halves: the key (rewritten-equal
// queries MUST collide — Theorem 3.1 makes serving one's answer for the
// other sound — and inequivalent queries must not), and the entry lifecycle
// (LRU eviction order, store-version invalidation, and the negative
// guarantee that a stale result can never be served after invalidation,
// even by a query that was mid-flight across it).

#include "server/query_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/equivalence.h"
#include "server/query_server.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

// --- CanonicalKey -----------------------------------------------------------

TEST(CanonicalKeyTest, CommutedAndFlattenedQueriesCollide) {
  QueryPtr ab =
      Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});
  QueryPtr ba =
      Query::And({Query::Atomic("B", "t"), Query::Atomic("A", "t")});
  EXPECT_EQ(CanonicalKey(ab), CanonicalKey(ba));

  // Associativity: (A AND B) AND C == A AND (B AND C).
  QueryPtr left = Query::And({ab, Query::Atomic("C", "t")});
  QueryPtr right = Query::And(
      {Query::Atomic("A", "t"),
       Query::And({Query::Atomic("B", "t"), Query::Atomic("C", "t")})});
  EXPECT_EQ(CanonicalKey(left), CanonicalKey(right));
}

TEST(CanonicalKeyTest, IdempotenceAbsorptionDistributionCollide) {
  QueryPtr a = Query::Atomic("A", "t");
  QueryPtr b = Query::Atomic("B", "t");
  QueryPtr c = Query::Atomic("C", "t");

  // Idempotence: A == A AND A.
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(Query::And({a, a})));
  // Absorption: A == A AND (A OR B).
  EXPECT_EQ(CanonicalKey(a),
            CanonicalKey(Query::And({a, Query::Or({a, b})})));
  // Distribution: A AND (B OR C) == (A AND B) OR (A AND C).
  QueryPtr factored = Query::And({a, Query::Or({b, c})});
  QueryPtr distributed =
      Query::Or({Query::And({a, b}), Query::And({a, c})});
  EXPECT_EQ(CanonicalKey(factored), CanonicalKey(distributed));
}

TEST(CanonicalKeyTest, EveryRewriterChainCollides) {
  // The strongest form: arbitrary chains of the rewriter's identities
  // (which include fresh-atom absorption) keep the key fixed.
  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    QueryPtr q = RandomMonotoneQuery(&rng, {"A", "B", "C", "D"}, 3);
    const std::string key = CanonicalKey(q);
    QueryPtr rewritten = RewriteEquivalent(q, &rng, 1 + round % 5);
    EXPECT_EQ(key, CanonicalKey(rewritten)) << "round " << round;
  }
}

TEST(CanonicalKeyTest, InequivalentQueriesDiffer) {
  QueryPtr a = Query::Atomic("A", "t");
  QueryPtr b = Query::Atomic("B", "t");
  EXPECT_NE(CanonicalKey(a), CanonicalKey(b));
  EXPECT_NE(CanonicalKey(Query::And({a, b})), CanonicalKey(Query::Or({a, b})));
  EXPECT_NE(CanonicalKey(a), CanonicalKey(Query::And({a, b})));
  // Same attribute, different target: different atom.
  EXPECT_NE(CanonicalKey(Query::Atomic("A", "x")),
            CanonicalKey(Query::Atomic("A", "y")));
  // Length-prefix soundness: ("ab","c") vs ("a","bc").
  EXPECT_NE(CanonicalKey(Query::Atomic("ab", "c")),
            CanonicalKey(Query::Atomic("a", "bc")));
}

TEST(CanonicalKeyTest, NonStandardTreesGetStructuralKeys) {
  QueryPtr a = Query::Atomic("A", "t");
  QueryPtr b = Query::Atomic("B", "t");

  // NOT falls back to structural (not a lattice term).
  QueryPtr negated = Query::Not(a);
  EXPECT_NE(CanonicalKey(negated).find("struct:"), std::string::npos);
  EXPECT_NE(CanonicalKey(negated), CanonicalKey(a));

  // Weighted conjunctions are rule-distinct from unweighted ones, and
  // different weights differ from each other.
  Result<Weighting> w73 = Weighting::Create({0.7, 0.3});
  Result<Weighting> w55 = Weighting::Create({0.5, 0.5});
  Result<QueryPtr> q73 = Query::WeightedAnd({a, b}, *w73);
  Result<QueryPtr> q55 = Query::WeightedAnd({a, b}, *w55);
  ASSERT_TRUE(q73.ok());
  ASSERT_TRUE(q55.ok());
  EXPECT_NE(CanonicalKey(*q73), CanonicalKey(Query::And({a, b})));
  EXPECT_NE(CanonicalKey(*q73), CanonicalKey(*q55));

  // A non-min AND rule must not share a key with min-rule AND: only
  // min/max preserve logical equivalence (Theorem 3.1), so the DNF form
  // would be unsound for it.
  QueryPtr mean = Query::And({a, b}, GeometricMeanRule());
  EXPECT_NE(CanonicalKey(mean), CanonicalKey(Query::And({a, b})));
}

// --- QueryCache -------------------------------------------------------------

CachedQuery Entry(uint64_t version, double cost = 1.0) {
  CachedQuery e;
  e.plan.estimated_cost = cost;
  e.store_version = version;
  return e;
}

TEST(QueryCacheTest, LruEvictionOrder) {
  QueryCache cache(2);
  cache.Insert("a", Entry(0, 1.0));
  cache.Insert("b", Entry(0, 2.0));
  // Touch "a" so "b" is the LRU victim.
  ASSERT_TRUE(cache.Lookup("a").has_value());
  cache.Insert("c", Entry(0, 3.0));
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());  // evicted
  EXPECT_TRUE(cache.Lookup("c").has_value());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(QueryCacheTest, OverwriteFreshensWithoutEviction) {
  QueryCache cache(2);
  cache.Insert("a", Entry(0, 1.0));
  cache.Insert("b", Entry(0, 2.0));
  cache.Insert("a", Entry(0, 9.0));  // overwrite, no growth
  EXPECT_EQ(cache.size(), 2u);
  std::optional<CachedQuery> got = cache.Lookup("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->plan.estimated_cost, 9.0);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(QueryCacheTest, InvalidationDropsEverythingAndCountsMisses) {
  QueryCache cache(4);
  cache.Insert("a", Entry(0));
  cache.Insert("b", Entry(0));
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(QueryCacheTest, StaleVersionInsertIsDropped) {
  // The mid-flight race: a query stamps version 0, the store regenerates
  // (version 1), the query's late Insert must be refused — otherwise its
  // stale answer would look fresh.
  QueryCache cache(4);
  const uint64_t before = cache.store_version();
  cache.InvalidateAll();
  cache.Insert("late", Entry(before));
  EXPECT_FALSE(cache.Lookup("late").has_value());
  EXPECT_EQ(cache.size(), 0u);
  // An entry stamped with the current version is accepted.
  cache.Insert("fresh", Entry(cache.store_version()));
  EXPECT_TRUE(cache.Lookup("fresh").has_value());
}

// --- End to end: stale results can never be served --------------------------

TEST(CacheInvalidationEndToEndTest, StaleResultNeverServedAfterRegeneration) {
  // Serve a query, regenerate the store (new grades!), InvalidateCache,
  // re-serve: the second answer must come from the new store, not the
  // cache. A violation here is the cache serving wrong data — the one
  // outcome the design must make impossible.
  Rng rng(7);
  Workload old_store = IndependentUniform(&rng, 100, 2);
  Workload new_store = IndependentUniform(&rng, 100, 2);

  QueryServer server;  // inline execution, result cache on
  QueryPtr query =
      Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")});

  auto make_resolver = [](std::vector<VectorSource>* sources) {
    return [sources](const Query& atom) -> Result<GradedSource*> {
      return atom.attribute() == "A" ? &(*sources)[0] : &(*sources)[1];
    };
  };

  Result<std::vector<VectorSource>> old_sources = old_store.MakeSources();
  ASSERT_TRUE(old_sources.ok());
  Result<Submission> first =
      server.Submit(query, 5, make_resolver(&*old_sources));
  ASSERT_TRUE(first.ok());
  const ServedResult& a = first->ticket->Wait();
  ASSERT_TRUE(a.status.ok());

  // Cache hit while the store is unchanged — the baseline positive case.
  Result<Submission> repeat =
      server.Submit(query, 5, make_resolver(&*old_sources));
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->ticket->Wait().from_cache);

  // The store regenerates; the server is told.
  server.InvalidateCache();
  Result<std::vector<VectorSource>> new_sources = new_store.MakeSources();
  ASSERT_TRUE(new_sources.ok());
  Result<Submission> second =
      server.Submit(query, 5, make_resolver(&*new_sources));
  ASSERT_TRUE(second.ok());
  const ServedResult& b = second->ticket->Wait();
  ASSERT_TRUE(b.status.ok());
  EXPECT_FALSE(b.from_cache);  // the negative guarantee

  // And the answer really is the new store's: compare against a direct run.
  Result<std::vector<VectorSource>> ref_sources = new_store.MakeSources();
  ASSERT_TRUE(ref_sources.ok());
  Result<ExecutionResult> ref =
      ExecuteTopK(query, make_resolver(&*ref_sources), 5);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(b.topk.items.size(), ref->topk.items.size());
  for (size_t i = 0; i < ref->topk.items.size(); ++i) {
    EXPECT_EQ(b.topk.items[i].id, ref->topk.items[i].id);
    EXPECT_EQ(b.topk.items[i].grade, ref->topk.items[i].grade);
  }
}

TEST(CacheKeyEndToEndTest, RewrittenEquivalentQueryHitsTheCache) {
  // The tentpole guarantee in action: a rewritten-but-equivalent query is
  // served from the original's cache entry.
  Rng rng(21);
  Workload store = IndependentUniform(&rng, 100, 3);
  Result<std::vector<VectorSource>> sources = store.MakeSources();
  ASSERT_TRUE(sources.ok());
  auto resolver = [&](const Query& atom) -> Result<GradedSource*> {
    if (atom.attribute() == "A") return &(*sources)[0];
    if (atom.attribute() == "B") return &(*sources)[1];
    if (atom.attribute() == "C") return &(*sources)[2];
    // Fresh atoms introduced by absorption rewrites: grade-0 everywhere is
    // wrong in general, so resolve them to a real list only if asked —
    // but min/max ignores them by construction, so any list works. Use C.
    return &(*sources)[2];
  };

  QueryPtr factored = Query::And(
      {Query::Atomic("A", "t"),
       Query::Or({Query::Atomic("B", "t"), Query::Atomic("C", "t")})});
  QueryPtr distributed = Query::Or(
      {Query::And({Query::Atomic("A", "t"), Query::Atomic("B", "t")}),
       Query::And({Query::Atomic("A", "t"), Query::Atomic("C", "t")})});
  ASSERT_EQ(CanonicalKey(factored), CanonicalKey(distributed));

  QueryServer server;
  Result<Submission> first = server.Submit(factored, 5, resolver);
  ASSERT_TRUE(first.ok());
  const ServedResult& a = first->ticket->Wait();
  ASSERT_TRUE(a.status.ok());
  EXPECT_FALSE(a.from_cache);

  Result<Submission> second = server.Submit(distributed, 5, resolver);
  ASSERT_TRUE(second.ok());
  const ServedResult& b = second->ticket->Wait();
  ASSERT_TRUE(b.status.ok());
  EXPECT_TRUE(b.from_cache);  // rewritten-equal ⇒ same key ⇒ hit
  ASSERT_EQ(a.topk.items.size(), b.topk.items.size());
  for (size_t i = 0; i < a.topk.items.size(); ++i) {
    EXPECT_EQ(a.topk.items[i].id, b.topk.items[i].id);
    EXPECT_EQ(a.topk.items[i].grade, b.topk.items[i].grade);
  }
}

}  // namespace
}  // namespace fuzzydb
