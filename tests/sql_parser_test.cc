#include "sql/parser.h"

#include <gtest/gtest.h>

namespace fuzzydb {
namespace {

TEST(ParserTest, RunningExampleParses) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT TOP 10 FROM cds WHERE Artist = 'Beatles' AND "
      "AlbumColor ~ 'red';");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->k, 10u);
  EXPECT_EQ(stmt->collection, "cds");
  EXPECT_FALSE(stmt->via.has_value());
  ASSERT_EQ(stmt->query->kind(), Query::Kind::kAnd);
  ASSERT_EQ(stmt->query->children().size(), 2u);
  EXPECT_EQ(stmt->query->children()[0]->attribute(), "Artist");
  EXPECT_EQ(stmt->query->children()[0]->target(), "Beatles");
  EXPECT_EQ(stmt->query->children()[1]->attribute(), "AlbumColor");
  EXPECT_EQ(stmt->query->rule()->name(), "min");
}

TEST(ParserTest, PrecedenceAndOverOr) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' OR c~'3'");
  ASSERT_TRUE(stmt.ok());
  // (a AND b) OR c
  ASSERT_EQ(stmt->query->kind(), Query::Kind::kOr);
  ASSERT_EQ(stmt->query->children().size(), 2u);
  EXPECT_EQ(stmt->query->children()[0]->kind(), Query::Kind::kAnd);
  EXPECT_EQ(stmt->query->children()[1]->kind(), Query::Kind::kAtomic);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT TOP 5 FROM db WHERE a~'1' AND (b~'2' OR c~'3')");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->query->kind(), Query::Kind::kAnd);
  EXPECT_EQ(stmt->query->children()[1]->kind(), Query::Kind::kOr);
}

TEST(ParserTest, NotParses) {
  Result<SelectStatement> stmt =
      ParseSelect("SELECT TOP 5 FROM db WHERE NOT a~'1' AND b~'2'");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->query->kind(), Query::Kind::kAnd);
  EXPECT_EQ(stmt->query->children()[0]->kind(), Query::Kind::kNot);
  EXPECT_FALSE(stmt->query->IsMonotone());
}

TEST(ParserTest, UsingClauseSetsTheRule) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' USING product");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->query->rule()->name(), "product");
  EXPECT_FALSE(
      ParseSelect("SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' USING nope")
          .ok());
  // USING needs a top-level combination.
  EXPECT_FALSE(
      ParseSelect("SELECT TOP 5 FROM db WHERE a~'1' USING min").ok());
}

TEST(ParserTest, WeightsClauseBuildsWeightedQuery) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' WEIGHTS (2, 1)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->query->weights().has_value());
  EXPECT_NEAR((*stmt->query->weights())[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR((*stmt->query->weights())[1], 1.0 / 3.0, 1e-12);
  // Arity mismatch between weights and conjuncts fails.
  EXPECT_FALSE(ParseSelect(
                   "SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' WEIGHTS (1)")
                   .ok());
}

TEST(ParserTest, UsingAndWeightsCompose) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' USING avg WEIGHTS (3, 1)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(stmt->query->rule()->name().find("avg"), std::string::npos);
  EXPECT_NE(stmt->query->rule()->name().find("weighted"), std::string::npos);
}

TEST(ParserTest, ViaClauseForcesAlgorithm) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' VIA fagin");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->via.has_value());
  EXPECT_EQ(*stmt->via, Algorithm::kFagin);
  EXPECT_FALSE(
      ParseSelect("SELECT TOP 5 FROM db WHERE a~'1' VIA warp").ok());
}

TEST(ParserTest, TargetsMayBeStringsNumbersOrIdentifiers) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT TOP 1 FROM db WHERE year = 1969 AND artist = Beatles");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->query->children()[0]->target(), "1969");
  EXPECT_EQ(stmt->query->children()[1]->target(), "Beatles");
}

TEST(ParserTest, SyntaxErrorsAreInformative) {
  Result<SelectStatement> missing_top =
      ParseSelect("SELECT 10 FROM db WHERE a~'1'");
  ASSERT_FALSE(missing_top.ok());
  EXPECT_NE(missing_top.status().message().find("TOP"), std::string::npos);

  EXPECT_FALSE(ParseSelect("SELECT TOP 0 FROM db WHERE a~'1'").ok());
  EXPECT_FALSE(ParseSelect("SELECT TOP 2.5 FROM db WHERE a~'1'").ok());
  EXPECT_FALSE(ParseSelect("SELECT TOP 5 FROM db WHERE a ! '1'").ok());
  EXPECT_FALSE(ParseSelect("SELECT TOP 5 FROM db WHERE (a~'1'").ok());
  EXPECT_FALSE(ParseSelect("SELECT TOP 5 FROM db WHERE a~'1' garbage").ok());
  EXPECT_FALSE(ParseSelect("").ok());
}

TEST(ParserTest, OwaRequiresAndConsumesWeights) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' USING owa WEIGHTS (1, 3)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_NE(stmt->query->rule()->name().find("owa"), std::string::npos);
  // OWA weights attach to ranks, not the Fagin–Wimmers transform.
  EXPECT_FALSE(stmt->query->weights().has_value());

  EXPECT_FALSE(
      ParseSelect("SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' USING owa")
          .ok());
  EXPECT_FALSE(ParseSelect("SELECT TOP 5 FROM db WHERE a~'1' AND b~'2' "
                           "USING owa WEIGHTS (1)")
                   .ok());
}

TEST(ParserTest, ExplainFlagParses) {
  Result<SelectStatement> plain =
      ParseSelect("SELECT TOP 5 FROM db WHERE a~'1'");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain);

  Result<SelectStatement> explained =
      ParseSelect("EXPLAIN SELECT TOP 5 FROM db WHERE a~'1' AND b~'2'");
  ASSERT_TRUE(explained.ok());
  EXPECT_TRUE(explained->explain);
  EXPECT_EQ(explained->k, 5u);

  // EXPLAIN must be followed by SELECT.
  EXPECT_FALSE(ParseSelect("EXPLAIN TOP 5 FROM db WHERE a~'1'").ok());
}

TEST(RuleByNameTest, AllDocumentedNamesResolve) {
  for (const char* name : {"min", "max", "product", "lukasiewicz", "hamacher",
                           "einstein", "avg", "geomean", "harmonic",
                           "median"}) {
    EXPECT_TRUE(RuleByName(name).ok()) << name;
  }
  EXPECT_FALSE(RuleByName("bogus").ok());
}

TEST(AlgorithmByNameTest, AllDocumentedNamesResolve) {
  EXPECT_EQ(*AlgorithmByName("auto"), Algorithm::kAuto);
  EXPECT_EQ(*AlgorithmByName("naive"), Algorithm::kNaive);
  EXPECT_EQ(*AlgorithmByName("fagin"), Algorithm::kFagin);
  EXPECT_EQ(*AlgorithmByName("ta"), Algorithm::kThreshold);
  EXPECT_EQ(*AlgorithmByName("nra"), Algorithm::kNoRandomAccess);
  EXPECT_EQ(*AlgorithmByName("filtered"), Algorithm::kFilteredSimulation);
  EXPECT_EQ(*AlgorithmByName("shortcut"), Algorithm::kDisjunctionShortcut);
  EXPECT_FALSE(AlgorithmByName("warp").ok());
}

}  // namespace
}  // namespace fuzzydb
