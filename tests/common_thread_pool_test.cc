// ThreadPool / MakeShards unit tests. The pool is the substrate for the
// sharded embedding kernels, so the properties pinned here — every index
// runs exactly once, callers participate, concurrent jobs serialize, and
// shard geometry depends only on (n, shards) — are what the bit-identical
// guarantees in image/embedding_store.h stand on.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace fuzzydb {
namespace {

TEST(MakeShardsTest, SplitsEvenlyWithRemainderUpFront) {
  std::vector<ShardRange> shards = MakeShards(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 4u);  // first shard takes the extra element
  EXPECT_EQ(shards[1].begin, 4u);
  EXPECT_EQ(shards[1].end, 7u);
  EXPECT_EQ(shards[2].begin, 7u);
  EXPECT_EQ(shards[2].end, 10u);
}

TEST(MakeShardsTest, CoversEveryIndexExactlyOnce) {
  for (size_t n : {0u, 1u, 2u, 7u, 64u, 1000u}) {
    for (size_t s : {1u, 2u, 3u, 7u, 8u, 200u}) {
      std::vector<ShardRange> shards = MakeShards(n, s);
      ASSERT_EQ(shards.size(), s) << "n=" << n << " s=" << s;
      size_t covered = 0;
      size_t expect_begin = 0;
      for (const ShardRange& r : shards) {
        EXPECT_EQ(r.begin, expect_begin);
        EXPECT_LE(r.begin, r.end);
        covered += r.size();
        expect_begin = r.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(shards.back().end, n);
    }
  }
}

TEST(MakeShardsTest, ZeroShardsClampsToOne) {
  std::vector<ShardRange> shards = MakeShards(5, 0);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 5u);
}

TEST(ThreadPoolTest, SingleExecutorRunsSeriallyOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.executors(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(16);
  pool.ParallelFor(16, [&](size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroExecutorsTreatedAsOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.executors(), 1u);
  size_t count = 0;
  pool.ParallelFor(5, [&](size_t) { ++count; });
  EXPECT_EQ(count, 5u);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (size_t executors : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(executors);
    EXPECT_EQ(pool.executors(), executors);
    for (size_t n : {0u, 1u, 2u, 5u, 100u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "executors=" << executors
                                     << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ManySmallJobsBackToBack) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u * 8u);
}

TEST(ThreadPoolTest, ConcurrentSubmittersSerializeAndAllComplete) {
  ThreadPool pool(3);
  constexpr size_t kSubmitters = 4;
  constexpr size_t kIndices = 64;
  std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kIndices);
  }
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int rep = 0; rep < 20; ++rep) {
        pool.ParallelFor(kIndices,
                         [&, s](size_t i) { hits[s][i].fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (size_t s = 0; s < kSubmitters; ++s) {
    for (size_t i = 0; i < kIndices; ++i) {
      EXPECT_EQ(hits[s][i].load(), 20) << "submitter " << s << " i " << i;
    }
  }
}

TEST(ThreadPoolTest, SharedPoolExistsAndWorks) {
  ThreadPool* pool = ThreadPool::Shared();
  ASSERT_NE(pool, nullptr);
  EXPECT_GE(pool->executors(), 1u);
  EXPECT_EQ(pool, ThreadPool::Shared());  // same instance every time
  std::atomic<size_t> count{0};
  pool->ParallelFor(32, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32u);
}

}  // namespace
}  // namespace fuzzydb
