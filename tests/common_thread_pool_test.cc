// ThreadPool / MakeShards unit tests. The pool is the substrate for the
// sharded embedding kernels, so the properties pinned here — every index
// runs exactly once, callers participate, concurrent jobs serialize, and
// shard geometry depends only on (n, shards) — are what the bit-identical
// guarantees in image/embedding_store.h stand on.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace fuzzydb {
namespace {

// Condition-variable latch for synchronizing with fire-and-forget tasks.
// Tests must never sleep-and-hope: they wait on an explicit signal.
class Latch {
 public:
  explicit Latch(size_t count) : remaining_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (remaining_ > 0 && --remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

TEST(MakeShardsTest, SplitsEvenlyWithRemainderUpFront) {
  std::vector<ShardRange> shards = MakeShards(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 4u);  // first shard takes the extra element
  EXPECT_EQ(shards[1].begin, 4u);
  EXPECT_EQ(shards[1].end, 7u);
  EXPECT_EQ(shards[2].begin, 7u);
  EXPECT_EQ(shards[2].end, 10u);
}

TEST(MakeShardsTest, CoversEveryIndexExactlyOnce) {
  for (size_t n : {0u, 1u, 2u, 7u, 64u, 1000u}) {
    for (size_t s : {1u, 2u, 3u, 7u, 8u, 200u}) {
      std::vector<ShardRange> shards = MakeShards(n, s);
      ASSERT_EQ(shards.size(), s) << "n=" << n << " s=" << s;
      size_t covered = 0;
      size_t expect_begin = 0;
      for (const ShardRange& r : shards) {
        EXPECT_EQ(r.begin, expect_begin);
        EXPECT_LE(r.begin, r.end);
        covered += r.size();
        expect_begin = r.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(shards.back().end, n);
    }
  }
}

TEST(MakeShardsTest, ZeroShardsClampsToOne) {
  std::vector<ShardRange> shards = MakeShards(5, 0);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 5u);
}

TEST(ThreadPoolTest, SingleExecutorRunsSeriallyOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.executors(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(16);
  pool.ParallelFor(16, [&](size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroExecutorsTreatedAsOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.executors(), 1u);
  size_t count = 0;
  pool.ParallelFor(5, [&](size_t) { ++count; });
  EXPECT_EQ(count, 5u);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (size_t executors : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(executors);
    EXPECT_EQ(pool.executors(), executors);
    for (size_t n : {0u, 1u, 2u, 5u, 100u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "executors=" << executors
                                     << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ManySmallJobsBackToBack) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u * 8u);
}

TEST(ThreadPoolTest, ConcurrentSubmittersSerializeAndAllComplete) {
  ThreadPool pool(3);
  constexpr size_t kSubmitters = 4;
  constexpr size_t kIndices = 64;
  std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kIndices);
  }
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int rep = 0; rep < 20; ++rep) {
        pool.ParallelFor(kIndices,
                         [&, s](size_t i) { hits[s][i].fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (size_t s = 0; s < kSubmitters; ++s) {
    for (size_t i = 0; i < kIndices; ++i) {
      EXPECT_EQ(hits[s][i].load(), 20) << "submitter " << s << " i " << i;
    }
  }
}

TEST(ThreadPoolTaskTest, PostedTaskRunsExactlyOnce) {
  ThreadPool pool(3);
  std::atomic<int> runs{0};
  Latch done(1);
  ASSERT_TRUE(pool.TryPost([&] {
    runs.fetch_add(1);
    done.CountDown();
  }));
  done.Wait();
  EXPECT_EQ(runs.load(), 1);
}

TEST(ThreadPoolTaskTest, WorkerlessPoolRefusesAndScheduleFallsBackInline) {
  ThreadPool pool(1);  // caller-only: no worker to ever drain a queue
  EXPECT_FALSE(pool.TryPost([] {}));
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Schedule([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);  // Schedule ran the task inline, synchronously
  EXPECT_EQ(pool.queued_tasks(), 0u);
}

TEST(ThreadPoolTaskTest, FullQueueRefusesWithoutRunningOrKeepingTheTask) {
  // One worker, capacity two. A gate task blocks the worker so the queue
  // fills deterministically; the refused task must not run, ever.
  ThreadPool pool(2, 2);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  Latch worker_blocked(1);

  ASSERT_TRUE(pool.TryPost([&] {
    worker_blocked.CountDown();
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  }));
  worker_blocked.Wait();  // the worker is now inside the gate task

  std::atomic<int> queued_runs{0};
  Latch queued_done(2);
  ASSERT_TRUE(pool.TryPost([&] {
    queued_runs.fetch_add(1);
    queued_done.CountDown();
  }));
  ASSERT_TRUE(pool.TryPost([&] {
    queued_runs.fetch_add(1);
    queued_done.CountDown();
  }));
  EXPECT_EQ(pool.queued_tasks(), 2u);

  std::atomic<bool> refused_ran{false};
  EXPECT_FALSE(pool.TryPost([&] { refused_ran.store(true); }));

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  queued_done.Wait();  // both accepted tasks ran once unblocked
  EXPECT_EQ(queued_runs.load(), 2);
  EXPECT_FALSE(refused_ran.load());
}

TEST(ThreadPoolTaskTest, DestructorDrainsAcceptedTasks) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2, 16);
    std::mutex gate_mu;
    std::condition_variable gate_cv;
    bool gate_open = false;
    Latch worker_blocked(1);
    ASSERT_TRUE(pool.TryPost([&] {
      worker_blocked.CountDown();
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return gate_open; });
    }));
    worker_blocked.Wait();
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(pool.TryPost([&] { runs.fetch_add(1); }));
    }
    {
      std::lock_guard<std::mutex> lock(gate_mu);
      gate_open = true;
    }
    gate_cv.notify_all();
    // Pool destroyed here with tasks possibly still queued.
  }
  EXPECT_EQ(runs.load(), 8);  // drained, not dropped
}

TEST(ThreadPoolTaskTest, TasksDoNotStarveBlockingJobs) {
  // Jobs take priority over queued tasks; both complete.
  ThreadPool pool(3, 64);
  std::atomic<int> task_runs{0};
  Latch tasks_done(32);
  for (int i = 0; i < 32; ++i) {
    pool.Schedule([&] {
      task_runs.fetch_add(1);
      tasks_done.CountDown();
    });
  }
  std::atomic<size_t> job_hits{0};
  pool.ParallelFor(64, [&](size_t) { job_hits.fetch_add(1); });
  EXPECT_EQ(job_hits.load(), 64u);
  tasks_done.Wait();
  EXPECT_EQ(task_runs.load(), 32);
}

TEST(ThreadPoolTaskTest, InlineExecutorRunsSynchronously) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  int order = 0;
  InlineExecutor::Get()->Schedule([&] {
    ran_on = std::this_thread::get_id();
    order = 1;
  });
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(order, 1);  // completed before Schedule returned
  EXPECT_EQ(InlineExecutor::Get(), InlineExecutor::Get());
}

TEST(ThreadPoolShutdownTest, TryPostRefusesAfterShutdown) {
  // Regression: TryPost racing shutdown used to be only implicitly pinned
  // (stop_ was set by the destructor alone). The contract is refusal: after
  // Shutdown returns, no TryPost may accept, so a submitter can reason
  // "either my TryPost returned false, or my task ran".
  ThreadPool pool(3);
  std::atomic<int> runs{0};
  Latch done(1);
  ASSERT_TRUE(pool.TryPost([&] {
    runs.fetch_add(1);
    done.CountDown();
  }));
  done.Wait();
  pool.Shutdown();
  std::atomic<bool> late_ran{false};
  EXPECT_FALSE(pool.TryPost([&] { late_ran.store(true); }));
  EXPECT_EQ(runs.load(), 1);
  EXPECT_FALSE(late_ran.load());
  pool.Shutdown();  // idempotent
  EXPECT_FALSE(pool.TryPost([] {}));
}

TEST(ThreadPoolShutdownTest, ShutdownDrainsQueuedTasksBeforeJoining) {
  ThreadPool pool(2, 16);
  std::atomic<int> runs{0};
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  Latch worker_blocked(1);
  ASSERT_TRUE(pool.TryPost([&] {
    worker_blocked.CountDown();
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  }));
  worker_blocked.Wait();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.TryPost([&] { runs.fetch_add(1); }));
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.Shutdown();
  EXPECT_EQ(runs.load(), 8);  // accepted before stop → drained, not dropped
}

TEST(ThreadPoolShutdownTest, ParallelForStillWorksAfterShutdown) {
  ThreadPool pool(3);
  pool.Shutdown();
  std::vector<int> hits(32, 0);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(32);
  pool.ParallelFor(32, [&](size_t i) {
    ++hits[i];
    ran[i] = std::this_thread::get_id();
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << i;
    EXPECT_EQ(ran[i], caller) << i;  // submitter claimed every index itself
  }
}

TEST(ThreadPoolShutdownTest, ConcurrentTryPostVsShutdownNeverDropsAccepted) {
  // Hammer the race the fix pins: submitters TryPost while another thread
  // shuts the pool down. Every accepted task must run exactly once — no
  // silent drops, no double runs — and every post after shutdown refuses.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3, 8);
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 50; ++i) {
          if (pool.TryPost([&] { ran.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    std::thread stopper([&] {
      while (!go.load()) std::this_thread::yield();
      pool.Shutdown();
    });
    go.store(true);
    for (std::thread& t : submitters) t.join();
    stopper.join();
    pool.Shutdown();  // ensure fully drained before counting
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

TEST(ThreadPoolTest, SharedPoolExistsAndWorks) {
  ThreadPool* pool = ThreadPool::Shared();
  ASSERT_NE(pool, nullptr);
  EXPECT_GE(pool->executors(), 1u);
  EXPECT_EQ(pool, ThreadPool::Shared());  // same instance every time
  std::atomic<size_t> count{0};
  pool->ParallelFor(32, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32u);
}

}  // namespace
}  // namespace fuzzydb
