// Golden-equivalence tests for the sharded embedding kernels: at every
// tested shard count — with and without a real thread pool — BatchDistances,
// ExactKnn and CascadeKnn must be *bit-identical* to their serial versions
// (the lane-blocked kernel's accumulation order depends only on absolute
// dimension indices, shard geometry depends only on (n, shards), and the
// top-k merge uses the same lexicographic (d^2, index) order). Also pins the
// CascadeTuner invariant: tuning changes costs, never answers.

#include "image/embedding_store.h"

#include <gtest/gtest.h>

#include <thread>

#include "image/cascade_tuner.h"
#include "image/image_store.h"

namespace fuzzydb {
namespace {

std::vector<Histogram> RandomDatabase(Rng* rng, size_t n, size_t bins) {
  std::vector<Histogram> db;
  db.reserve(n);
  for (size_t i = 0; i < n; ++i) db.push_back(RandomHistogram(rng, bins));
  return db;
}

std::vector<size_t> ShardCounts() {
  return {1, 2, 7, std::max<size_t>(1, std::thread::hardware_concurrency())};
}

class ParallelKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2027);
    palette_ = Palette::Uniform(64, &rng);
    qfd_ = *QuadraticFormDistance::Create(palette_);
    db_ = RandomDatabase(&rng, 523, 64);  // deliberately not round
    store_ = *EmbeddingStore::Build(qfd_, db_);
    for (int q = 0; q < 6; ++q) {
      targets_.push_back(qfd_.Embed(RandomHistogram(&rng, 64)));
    }
  }

  static void ExpectIdentical(
      const std::vector<std::pair<size_t, double>>& got,
      const std::vector<std::pair<size_t, double>>& want,
      const std::string& label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first) << label << " rank " << i;
      EXPECT_EQ(got[i].second, want[i].second) << label << " rank " << i;
    }
  }

  Palette palette_;
  QuadraticFormDistance qfd_;
  std::vector<Histogram> db_;
  EmbeddingStore store_;
  std::vector<std::vector<double>> targets_;
};

TEST_F(ParallelKernelTest, BatchDistancesBitIdenticalAcrossShardCounts) {
  ThreadPool pool(4);
  for (const std::vector<double>& target : targets_) {
    std::vector<double> serial(store_.size());
    store_.BatchDistances(target, serial);
    for (size_t shards : ShardCounts()) {
      for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
        std::vector<double> sharded(store_.size());
        store_.BatchDistances(target, sharded, p, shards);
        for (size_t i = 0; i < serial.size(); ++i) {
          ASSERT_EQ(sharded[i], serial[i])
              << "shards=" << shards << " pool=" << (p != nullptr)
              << " row=" << i;
        }
      }
    }
  }
}

TEST_F(ParallelKernelTest, ExactKnnBitIdenticalAcrossShardCounts) {
  ThreadPool pool(4);
  for (const std::vector<double>& target : targets_) {
    for (size_t k : {1u, 10u, 523u}) {
      std::vector<std::pair<size_t, double>> serial = store_.ExactKnn(target, k);
      for (size_t shards : ShardCounts()) {
        for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
          ExpectIdentical(store_.ExactKnn(target, k, p, shards), serial,
                          "exact k=" + std::to_string(k) + " shards=" +
                              std::to_string(shards));
        }
      }
    }
  }
}

TEST_F(ParallelKernelTest, CascadeKnnBitIdenticalAcrossShardCounts) {
  ThreadPool pool(4);
  for (const std::vector<double>& target : targets_) {
    for (CascadeOptions options :
         {CascadeOptions{1, 1}, CascadeOptions{8, 16}, CascadeOptions{64, 16}}) {
      std::vector<std::pair<size_t, double>> serial =
          store_.CascadeKnn(target, 10, options);
      for (size_t shards : ShardCounts()) {
        for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
          CascadeStats stats;
          ExpectIdentical(
              store_.CascadeKnn(target, 10, options, &stats, p, shards),
              serial, "cascade shards=" + std::to_string(shards));
          // Every row passes the int8 level -1 exactly once regardless of
          // sharding; the float prefix bound runs only for its survivors.
          EXPECT_EQ(stats.quantized_bound_computations, store_.size());
          EXPECT_LE(stats.bound_computations, store_.size());
        }
      }
    }
  }
}

TEST_F(ParallelKernelTest, ShardedStatsAreDeterministic) {
  // Shard-local pruning may do *more* refinement work than the serial scan,
  // but for a fixed (target, options, shards) the summed counters must be
  // exactly reproducible run over run.
  ThreadPool pool(4);
  for (size_t shards : ShardCounts()) {
    CascadeStats first, second;
    store_.CascadeKnn(targets_[0], 10, {}, &first, &pool, shards);
    store_.CascadeKnn(targets_[0], 10, {}, &second, &pool, shards);
    EXPECT_EQ(first.quantized_bound_computations,
              second.quantized_bound_computations);
    EXPECT_EQ(first.bound_computations, second.bound_computations);
    EXPECT_EQ(first.bytes_scanned_quantized, second.bytes_scanned_quantized);
    EXPECT_EQ(first.bytes_scanned_prefix, second.bytes_scanned_prefix);
    EXPECT_EQ(first.bytes_scanned_refine, second.bytes_scanned_refine);
    EXPECT_EQ(first.candidates_refined, second.candidates_refined);
    EXPECT_EQ(first.full_distance_computations,
              second.full_distance_computations);
    EXPECT_EQ(first.dims_accumulated, second.dims_accumulated);
  }
}

TEST_F(ParallelKernelTest, DuplicateRowsKeepIndexTieBreakWhenSharded) {
  // Few distinct rows, many copies: ties everywhere, across shard borders
  // too. The merged top-k must resolve them by ascending index exactly like
  // the serial scan.
  Rng rng(2029);
  std::vector<Histogram> distinct = RandomDatabase(&rng, 5, 64);
  std::vector<Histogram> db;
  for (int copy = 0; copy < 21; ++copy) {
    for (const Histogram& h : distinct) db.push_back(h);
  }
  EmbeddingStore store = *EmbeddingStore::Build(qfd_, db);
  std::vector<double> target = qfd_.Embed(distinct[2]);
  ThreadPool pool(4);
  std::vector<std::pair<size_t, double>> serial = store.ExactKnn(target, 23);
  for (size_t i = 1; i < serial.size(); ++i) {
    if (serial[i].second == serial[i - 1].second) {
      EXPECT_LT(serial[i - 1].first, serial[i].first);
    }
  }
  for (size_t shards : ShardCounts()) {
    ExpectIdentical(store.ExactKnn(target, 23, &pool, shards), serial,
                    "dup exact shards=" + std::to_string(shards));
    ExpectIdentical(store.CascadeKnn(target, 23, {}, nullptr, &pool, shards),
                    serial, "dup cascade shards=" + std::to_string(shards));
  }
}

TEST_F(ParallelKernelTest, MoreShardsThanRowsStillCorrect) {
  Rng rng(2039);
  std::vector<Histogram> tiny = RandomDatabase(&rng, 3, 64);
  EmbeddingStore store = *EmbeddingStore::Build(qfd_, tiny);
  ThreadPool pool(4);
  std::vector<double> target = qfd_.Embed(tiny[1]);
  std::vector<std::pair<size_t, double>> serial = store.ExactKnn(target, 3);
  for (size_t shards : {4u, 16u, 100u}) {
    ExpectIdentical(store.ExactKnn(target, 3, &pool, shards), serial,
                    "tiny shards=" + std::to_string(shards));
  }
}

TEST_F(ParallelKernelTest, TunerNeverChangesAnswers) {
  std::vector<std::vector<double>> calibration(targets_.begin(),
                                               targets_.begin() + 3);
  CascadeTunerOptions options;
  options.k = 10;
  TunedCascade tuned = CascadeTuner::Tune(store_, qfd_.eigenvalues(),
                                          calibration, options);
  EXPECT_GE(tuned.options.prefix_dim, 1u);
  EXPECT_GE(tuned.options.step, 1u);
  EXPECT_FALSE(tuned.sweep.empty());
  // The winner's modeled cost is the minimum of the sweep.
  for (const CascadeCandidate& c : tuned.sweep) {
    EXPECT_LE(tuned.cost, c.cost);
  }
  // Every swept configuration — winner included — returns exactly the
  // ExactKnn answer on fresh (non-calibration) queries.
  for (size_t q = 3; q < targets_.size(); ++q) {
    std::vector<std::pair<size_t, double>> exact =
        store_.ExactKnn(targets_[q], 10);
    for (const CascadeCandidate& c : tuned.sweep) {
      ExpectIdentical(store_.CascadeKnn(targets_[q], 10, c.options), exact,
                      "tuner prefix=" + std::to_string(c.options.prefix_dim) +
                          " step=" + std::to_string(c.options.step));
    }
    ExpectIdentical(store_.CascadeKnn(targets_[q], 10, tuned.options), exact,
                    "tuned winner");
  }
}

TEST_F(ParallelKernelTest, TunerSweepsShardCountsWhenGivenAPool) {
  std::vector<std::vector<double>> calibration(targets_.begin(),
                                               targets_.begin() + 2);
  ThreadPool pool(4);
  CascadeTunerOptions options;
  options.k = 10;
  options.pool = &pool;
  TunedCascade tuned = CascadeTuner::Tune(store_, qfd_.eigenvalues(),
                                          calibration, options);
  // The default shard grid widens to {1, 2, executors} with a real pool, so
  // the sweep must contain multi-shard candidates and the winner must still
  // be the sweep minimum.
  bool saw_multi_shard = false;
  for (const CascadeCandidate& c : tuned.sweep) {
    if (c.shards > 1) saw_multi_shard = true;
    EXPECT_LE(tuned.cost, c.cost);
  }
  EXPECT_TRUE(saw_multi_shard);
  EXPECT_GE(tuned.shards, 1u);
  // Whatever shard count wins, answers stay exact.
  std::vector<std::pair<size_t, double>> exact =
      store_.ExactKnn(targets_[3], 10);
  ExpectIdentical(store_.CascadeKnn(targets_[3], 10, tuned.options, nullptr,
                                    &pool, tuned.shards),
                  exact, "tuned sharded winner");
}

TEST_F(ParallelKernelTest, TunerPrefersOneShardWithoutRealParallelism) {
  // No pool: extra shards are charged full serial cost plus overhead, so
  // they can only lose and the deterministic tie-break keeps shards=1. This
  // is the 1-executor-host guarantee from DESIGN §3f.
  std::vector<std::vector<double>> calibration(targets_.begin(),
                                               targets_.begin() + 2);
  CascadeTunerOptions options;
  options.k = 10;
  options.shard_grid = {1, 2, 4};
  TunedCascade tuned = CascadeTuner::Tune(store_, qfd_.eigenvalues(),
                                          calibration, options);
  EXPECT_EQ(tuned.shards, 1u);
}

TEST_F(ParallelKernelTest, SpectrumPrefixesFollowTheEigenmass) {
  // Steep spectrum: one dominant eigenvalue -> short prefixes everywhere.
  std::vector<double> steep{100.0, 1.0, 0.5, 0.25, 0.1};
  std::vector<double> fractions{0.25, 0.5, 0.75, 0.9};
  std::vector<size_t> prefixes =
      CascadeTuner::SpectrumPrefixes(steep, fractions);
  ASSERT_FALSE(prefixes.empty());
  EXPECT_EQ(prefixes.front(), 1u);  // 100/101.85 > 90% already
  // Flat spectrum: fractions map to proportional depths.
  std::vector<double> flat(10, 1.0);
  prefixes = CascadeTuner::SpectrumPrefixes(flat, fractions);
  ASSERT_EQ(prefixes.size(), 4u);
  EXPECT_EQ(prefixes[0], 3u);   // ceil(0.25 * 10)
  EXPECT_EQ(prefixes[1], 5u);
  EXPECT_EQ(prefixes[2], 8u);
  EXPECT_EQ(prefixes[3], 9u);
  // Prefixes are sorted, unique, and within [1, dim].
  for (size_t i = 0; i < prefixes.size(); ++i) {
    EXPECT_GE(prefixes[i], 1u);
    EXPECT_LE(prefixes[i], flat.size());
    if (i > 0) {
      EXPECT_LT(prefixes[i - 1], prefixes[i]);
    }
  }
}

TEST_F(ParallelKernelTest, GeneratedStoreExposesTunedCascade) {
  ImageStoreOptions options;
  options.num_images = 60;
  options.palette_size = 27;
  Result<ImageStore> store = ImageStore::Generate(options);
  ASSERT_TRUE(store.ok());
  const CascadeOptions& tuned = store->tuned_cascade();
  EXPECT_GE(tuned.prefix_dim, 1u);
  EXPECT_LE(tuned.prefix_dim, 27u);
  EXPECT_GE(tuned.step, 1u);
  // And the tuned options still answer exactly like ExactKnn.
  std::vector<double> target =
      store->color_distance().Embed(store->image(7).histogram);
  ExpectIdentical(store->embeddings().CascadeKnn(target, 5, tuned),
                  store->embeddings().ExactKnn(target, 5), "store tuned");
}

}  // namespace
}  // namespace fuzzydb
