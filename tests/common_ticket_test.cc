// Ticket<T> unit tests: one-shot completion, first-wins races, and blocking
// waits — the handle the query server gives every admitted query.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/ticket.h"

namespace fuzzydb {
namespace {

TEST(TicketTest, CompletesOnceAndDelivers) {
  Ticket<int> t;
  EXPECT_FALSE(t.done());
  EXPECT_FALSE(t.TryGet().has_value());
  EXPECT_TRUE(t.Complete(42));
  EXPECT_TRUE(t.done());
  ASSERT_TRUE(t.TryGet().has_value());
  EXPECT_EQ(*t.TryGet(), 42);
  EXPECT_EQ(t.Wait(), 42);  // already done: returns immediately
}

TEST(TicketTest, SecondCompleteLosesAndValueIsKept) {
  Ticket<std::string> t;
  EXPECT_TRUE(t.Complete("first"));
  EXPECT_FALSE(t.Complete("second"));
  EXPECT_EQ(t.Wait(), "first");
}

TEST(TicketTest, WaitBlocksUntilCompleted) {
  Ticket<int> t;
  std::atomic<bool> waiter_got{false};
  std::thread waiter([&] {
    EXPECT_EQ(t.Wait(), 7);
    waiter_got.store(true);
  });
  // No sleep-and-hope assertions on the negative side; just complete and
  // check the waiter observed the value.
  EXPECT_TRUE(t.Complete(7));
  waiter.join();
  EXPECT_TRUE(waiter_got.load());
}

TEST(TicketTest, ConcurrentCompletionsExactlyOneWins) {
  for (int round = 0; round < 50; ++round) {
    Ticket<int> t;
    std::atomic<int> wins{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&, i] {
        while (!go.load()) std::this_thread::yield();
        if (t.Complete(i)) wins.fetch_add(1);
      });
    }
    go.store(true);
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(wins.load(), 1) << "round " << round;
    // The published value is whichever completion won — torn values are
    // impossible, so it must be one of the candidates.
    const int v = t.Wait();
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 4);
  }
}

TEST(TicketTest, ManyWaitersAllWake) {
  auto t = std::make_shared<Ticket<int>>();
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 6; ++i) {
    waiters.emplace_back([&, t] {
      EXPECT_EQ(t->Wait(), 99);
      woke.fetch_add(1);
    });
  }
  EXPECT_TRUE(t->Complete(99));
  for (std::thread& th : waiters) th.join();
  EXPECT_EQ(woke.load(), 6);
}

}  // namespace
}  // namespace fuzzydb
