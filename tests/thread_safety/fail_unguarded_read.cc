// NEGATIVE snippet: reads a GUARDED_BY member without holding its mutex.
// MUST compile without -Wthread-safety and MUST FAIL under
// -Wthread-safety -Werror ("reading variable 'count_' requires holding
// mutex 'mu_'") — tests/thread_safety/run_compile_fail.sh asserts both.

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    fuzzydb::MutexLock lock(mu_);
    ++count_;
  }

  // No lock: the analysis must flag this read.
  int Read() const { return count_; }

 private:
  mutable fuzzydb::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Read();
}
