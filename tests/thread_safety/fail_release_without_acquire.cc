// NEGATIVE snippet: releases a mutex that is not held — with std::mutex
// underneath that is undefined behavior at runtime. MUST compile without
// -Wthread-safety and MUST FAIL under -Wthread-safety -Werror ("releasing
// mutex 'mu' that was not held"). Never executed: the harness runs
// -fsyntax-only.

#include "common/sync.h"

int main() {
  fuzzydb::Mutex mu;
  mu.Unlock();  // the analysis must flag this release
  return 0;
}
