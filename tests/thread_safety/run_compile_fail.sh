#!/usr/bin/env bash
# Compile-fail harness for the capability-annotated sync layer (DESIGN §3i).
#
#   tests/thread_safety/run_compile_fail.sh <repo_root>
#
# Proves the -Wthread-safety gate actually fires instead of silently
# no-op'ing. For every fail_*.cc snippet it asserts BOTH directions:
#
#   1. the snippet compiles cleanly WITHOUT -Wthread-safety (so a later
#      failure is the analysis firing, not a syntax error masquerading as
#      coverage), and
#   2. the snippet FAILS under -Wthread-safety -Werror, with a diagnostic
#      that names thread-safety (not some unrelated -Werror).
#
# pass_*.cc snippets must compile cleanly WITH the flag — the positive
# control proving the harness flags real violations, not everything.
#
# Thread Safety Analysis is Clang-only. Without a clang++ on PATH (or in
# $FUZZYDB_CLANGXX) the harness exits 77, which ctest maps to SKIPPED via
# SKIP_RETURN_CODE; the CI analyze leg runs it strictly
# (FUZZYDB_ANALYZE_STRICT=1 turns the skip into a failure).
set -uo pipefail

if [ $# -ne 1 ]; then
  echo "usage: $0 <repo_root>" >&2
  exit 2
fi
ROOT="$1"
DIR="${ROOT}/tests/thread_safety"

CLANGXX="${FUZZYDB_CLANGXX:-}"
if [ -z "${CLANGXX}" ]; then
  for cand in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
              clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "${cand}" >/dev/null 2>&1; then CLANGXX="${cand}"; break; fi
  done
fi
if [ -z "${CLANGXX}" ]; then
  if [ "${FUZZYDB_ANALYZE_STRICT:-0}" = "1" ]; then
    echo "thread_safety: no clang++ found but strict mode demands it" >&2
    exit 1
  fi
  echo "thread_safety: no clang++ found; SKIPPED (CI analyze leg is strict)"
  exit 77
fi

BASE_FLAGS=(-std=c++20 -fsyntax-only "-I${ROOT}/src")
FAIL=0

echo "== thread_safety compile-fail harness ($(${CLANGXX} --version | head -n 1)) =="

for snippet in "${DIR}"/pass_*.cc; do
  name="$(basename "${snippet}")"
  if out="$("${CLANGXX}" "${BASE_FLAGS[@]}" -Wthread-safety -Werror \
            "${snippet}" 2>&1)"; then
    echo "PASS ${name}: compiles under -Wthread-safety -Werror"
  else
    echo "FAIL ${name}: positive snippet must compile; diagnostics:" >&2
    echo "${out}" >&2
    FAIL=1
  fi
done

for snippet in "${DIR}"/fail_*.cc; do
  name="$(basename "${snippet}")"
  # Direction 1: clean without the analysis — the snippet is valid C++.
  if ! out="$("${CLANGXX}" "${BASE_FLAGS[@]}" "${snippet}" 2>&1)"; then
    echo "FAIL ${name}: must be valid C++ without -Wthread-safety:" >&2
    echo "${out}" >&2
    FAIL=1
    continue
  fi
  # Direction 2: rejected with the analysis on, for a thread-safety reason.
  if out="$("${CLANGXX}" "${BASE_FLAGS[@]}" -Wthread-safety -Werror \
            "${snippet}" 2>&1)"; then
    echo "FAIL ${name}: compiled under -Wthread-safety -Werror —" \
         "the gate did not fire" >&2
    FAIL=1
  elif ! echo "${out}" | grep -q 'thread-safety'; then
    echo "FAIL ${name}: rejected, but not by the thread-safety analysis:" >&2
    echo "${out}" >&2
    FAIL=1
  else
    echo "PASS ${name}: rejected by -Wthread-safety as asserted"
  fi
done

if [ "${FAIL}" -ne 0 ]; then
  echo "thread_safety: compile-fail harness FAILED" >&2
  exit 1
fi
echo "thread_safety: compile-fail harness OK"
