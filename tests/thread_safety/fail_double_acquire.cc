// NEGATIVE snippet: acquires the same (non-reentrant) mutex twice — with
// std::mutex underneath that is undefined behavior at runtime. MUST compile
// without -Wthread-safety and MUST FAIL under -Wthread-safety -Werror
// ("acquiring mutex 'mu' that is already held"). Never executed: the
// harness runs -fsyntax-only.

#include "common/sync.h"

int main() {
  fuzzydb::Mutex mu;
  mu.Lock();
  mu.Lock();  // the analysis must flag this second acquire
  mu.Unlock();
  return 0;
}
