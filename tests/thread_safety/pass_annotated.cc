// POSITIVE control for the compile-fail harness: idiomatic use of the
// capability-annotated sync layer — scoped MutexLock over GUARDED_BY state,
// a REQUIRES helper called with the lock held, and a CondVar wait spelled
// as an explicit while loop. MUST compile cleanly under
// -Wthread-safety -Werror (and under any compiler without the flag).

#include "common/sync.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    fuzzydb::MutexLock lock(mu_);
    balance_ += amount;
    cv_.NotifyAll();
  }

  int DrainWhenFunded() {
    fuzzydb::MutexLock lock(mu_);
    while (balance_ == 0) cv_.Wait(mu_, lock);
    const int out = balance_;
    ResetLocked();
    return out;
  }

 private:
  void ResetLocked() REQUIRES(mu_) { balance_ = 0; }

  fuzzydb::Mutex mu_;
  fuzzydb::CondVar cv_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.DrainWhenFunded() == 1 ? 0 : 1;
}
