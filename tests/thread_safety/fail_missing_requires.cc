// NEGATIVE snippet: calls a REQUIRES(mu_) function without holding the
// mutex. MUST compile without -Wthread-safety and MUST FAIL under
// -Wthread-safety -Werror ("calling function 'PushLocked' requires holding
// mutex 'mu_' exclusively").

#include "common/sync.h"

namespace {

class Queue {
 public:
  // Missing MutexLock: the analysis must flag the PushLocked call.
  void Push(int v) { PushLocked(v); }

 private:
  void PushLocked(int v) REQUIRES(mu_) { size_ += v; }

  fuzzydb::Mutex mu_;
  int size_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.Push(1);
  return 0;
}
