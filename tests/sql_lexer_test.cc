#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace fuzzydb {
namespace {

std::vector<TokenType> Types(const std::string& source) {
  Result<std::vector<Token>> tokens = Lex(source);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenType> out;
  for (const Token& t : *tokens) out.push_back(t.type);
  return out;
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  EXPECT_EQ(Types("select SELECT SeLeCt"),
            (std::vector<TokenType>{TokenType::kSelect, TokenType::kSelect,
                                    TokenType::kSelect, TokenType::kEnd}));
}

TEST(LexerTest, FullStatementTokenization) {
  Result<std::vector<Token>> tokens =
      Lex("SELECT TOP 10 FROM cds WHERE Artist='Beatles' AND "
          "AlbumColor ~ 'red';");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> expect{
      TokenType::kSelect, TokenType::kTop,      TokenType::kNumber,
      TokenType::kFrom,   TokenType::kIdentifier, TokenType::kWhere,
      TokenType::kIdentifier, TokenType::kEquals, TokenType::kString,
      TokenType::kAnd,    TokenType::kIdentifier, TokenType::kSimilar,
      TokenType::kString, TokenType::kSemicolon, TokenType::kEnd};
  ASSERT_EQ(tokens->size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ((*tokens)[i].type, expect[i]) << "token " << i;
  }
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 10.0);
  EXPECT_EQ((*tokens)[8].text, "Beatles");
}

TEST(LexerTest, StringsUnescapeDoubledQuotes) {
  Result<std::vector<Token>> tokens = Lex("'it''s red'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's red");
}

TEST(LexerTest, NumbersIntegerAndDecimal) {
  Result<std::vector<Token>> tokens = Lex("42 3.14 .5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 42.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 3.14);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 0.5);
}

TEST(LexerTest, IdentifiersWithUnderscoresAndDigits) {
  Result<std::vector<Token>> tokens = Lex("Album_Color2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "Album_Color2");
}

TEST(LexerTest, ErrorsCarryPosition) {
  Result<std::vector<Token>> unterminated = Lex("WHERE x = 'oops");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("offset 10"),
            std::string::npos);

  Result<std::vector<Token>> bad_char = Lex("a @ b");
  ASSERT_FALSE(bad_char.ok());
  EXPECT_NE(bad_char.status().message().find("'@'"), std::string::npos);
}

TEST(LexerTest, EmptyInputYieldsOnlyEnd) {
  EXPECT_EQ(Types("   \t\n "), std::vector<TokenType>{TokenType::kEnd});
}

TEST(LexerTest, TokenTypeNamesAreHuman) {
  EXPECT_EQ(TokenTypeName(TokenType::kSelect), "SELECT");
  EXPECT_EQ(TokenTypeName(TokenType::kSimilar), "'~'");
  EXPECT_EQ(TokenTypeName(TokenType::kEnd), "end of input");
}

}  // namespace
}  // namespace fuzzydb
