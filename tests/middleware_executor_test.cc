#include "middleware/executor.h"

#include <gtest/gtest.h>

#include <set>

#include "common/thread_pool.h"
#include "middleware/composite_rule.h"
#include "middleware/cost.h"
#include "middleware/naive.h"
#include "sim/experiment.h"
#include "sim/workload.h"

namespace fuzzydb {
namespace {

// A fixture with three attribute sources (A, B, C) over one universe.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(307);
    workload_ = IndependentUniform(&rng, 250, 3);
    Result<std::vector<VectorSource>> sources = workload_.MakeSources();
    ASSERT_TRUE(sources.ok());
    sources_ = std::move(*sources);
    resolver_ = [this](const Query& atom) -> Result<GradedSource*> {
      if (atom.attribute() == "A") return &sources_[0];
      if (atom.attribute() == "B") return &sources_[1];
      if (atom.attribute() == "C") return &sources_[2];
      return Status::NotFound("unknown attribute " + atom.attribute());
    };
  }

  std::vector<GradedSource*> Ptrs() { return SourcePtrs(sources_); }

  Workload workload_;
  std::vector<VectorSource> sources_;
  SourceResolver resolver_;
};

TEST_F(ExecutorTest, AutoPicksShortcutForPureMaxDisjunction) {
  QueryPtr q = Query::Or({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->algorithm_used, Algorithm::kDisjunctionShortcut);
  EXPECT_EQ(r->topk.cost.sorted, 10u);  // m*k
}

TEST_F(ExecutorTest, AutoPicksThresholdForMonotoneConjunction) {
  QueryPtr q = Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algorithm_used, Algorithm::kThreshold);
}

TEST_F(ExecutorTest, AutoFallsBackToNaiveForNegation) {
  QueryPtr q = Query::And(
      {Query::Atomic("A", "x"), Query::Not(Query::Atomic("B", "y"))});
  Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algorithm_used, Algorithm::kNaive);
}

TEST_F(ExecutorTest, ForcingMonotoneAlgorithmOnNegationFails) {
  QueryPtr q = Query::Not(Query::Atomic("A", "x"));
  ExecutorOptions options;
  options.algorithm = Algorithm::kThreshold;
  Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 5, options);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorTest, AllAlgorithmsReturnTheSameAnswerSet) {
  QueryPtr q = Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y"),
                           Query::Atomic("C", "z")});
  ScoringRulePtr rule = CompositeQueryRule(q);
  std::vector<GradedSource*> ptrs = Ptrs();
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
  ASSERT_TRUE(truth.ok());
  for (Algorithm algo :
       {Algorithm::kNaive, Algorithm::kFagin, Algorithm::kThreshold,
        Algorithm::kFilteredSimulation}) {
    ExecutorOptions options;
    options.algorithm = algo;
    Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 7, options);
    ASSERT_TRUE(r.ok()) << AlgorithmName(algo);
    EXPECT_EQ(r->algorithm_used, algo);
    EXPECT_TRUE(IsValidTopK(r->topk.items, *truth, 7)) << AlgorithmName(algo);
  }
}

TEST_F(ExecutorTest, NestedMonotoneTreeRunsViaCompositeRule) {
  // (A AND (B OR C)): monotone though not strict; TA must handle it.
  QueryPtr q = Query::And(
      {Query::Atomic("A", "x"),
       Query::Or({Query::Atomic("B", "y"), Query::Atomic("C", "z")})});
  Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algorithm_used, Algorithm::kThreshold);

  ScoringRulePtr rule = CompositeQueryRule(q);
  std::vector<GradedSource*> ptrs = Ptrs();
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(IsValidTopK(r->topk.items, *truth, 5));
}

TEST_F(ExecutorTest, WeightedConjunctionEndToEnd) {
  Result<Weighting> theta = Weighting::Create({0.7, 0.3});
  ASSERT_TRUE(theta.ok());
  Result<QueryPtr> q = Query::WeightedAnd(
      {Query::Atomic("A", "x"), Query::Atomic("B", "y")}, *theta);
  ASSERT_TRUE(q.ok());
  Result<ExecutionResult> r = ExecuteTopK(*q, resolver_, 5);
  ASSERT_TRUE(r.ok());
  ScoringRulePtr rule = CompositeQueryRule(*q);
  std::vector<GradedSource*> two{&sources_[0], &sources_[1]};
  Result<GradedSet> truth = NaiveAllGrades(two, *rule);
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(IsValidTopK(r->topk.items, *truth, 5));
}

TEST_F(ExecutorTest, VerificationCatchesLyingUserRule) {
  // Garlic issue (§4.2): a user-defined rule claiming monotonicity must be
  // vetted; this one lies.
  ScoringRulePtr liar = UserDefinedRule(
      "liar",
      [](std::span<const double> s) { return 1.0 - s[0]; },
      /*claims_monotone=*/true, /*claims_strict=*/false);
  QueryPtr q = Query::And(
      {Query::Atomic("A", "x"), Query::Atomic("B", "y")}, liar);
  ExecutorOptions options;
  options.verify_rule_claims = true;
  Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 5, options);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);

  // An honest custom rule passes verification.
  ScoringRulePtr honest = UserDefinedRule(
      "honest-avg",
      [](std::span<const double> s) {
        double t = 0.0;
        for (double v : s) t += v;
        return t / static_cast<double>(s.size());
      },
      /*claims_monotone=*/true, /*claims_strict=*/true);
  QueryPtr q2 = Query::And(
      {Query::Atomic("A", "x"), Query::Atomic("B", "y")}, honest);
  EXPECT_TRUE(ExecuteTopK(q2, resolver_, 5, options).ok());
}

TEST_F(ExecutorTest, ShortcutRefusesNonDisjunctions) {
  QueryPtr q = Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  ExecutorOptions options;
  options.algorithm = Algorithm::kDisjunctionShortcut;
  EXPECT_EQ(ExecuteTopK(q, resolver_, 5, options).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorTest, UnknownAttributeSurfacesResolverError) {
  QueryPtr q = Query::Atomic("Nope", "x");
  Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 5);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, SingleAtomTopK) {
  QueryPtr q = Query::Atomic("A", "x");
  Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 3);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->topk.items.size(), 3u);
  // Must be the 3 best grades of source A.
  std::vector<GradedSource*> one{&sources_[0]};
  Result<GradedSet> truth = NaiveAllGrades(one, *MinRule());
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(IsValidTopK(r->topk.items, *truth, 3));
}

TEST_F(ExecutorTest, CombinedRunsThroughExecutorAndStaysCorrect) {
  QueryPtr q = Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  ScoringRulePtr rule = CompositeQueryRule(q);
  std::vector<GradedSource*> ptrs = {&sources_[0], &sources_[1]};
  Result<GradedSet> truth = NaiveAllGrades(ptrs, *rule);
  ASSERT_TRUE(truth.ok());
  for (size_t h : {size_t{1}, size_t{3}}) {
    ExecutorOptions options;
    options.algorithm = Algorithm::kCombined;
    options.combined_period = h;
    Result<ExecutionResult> r = ExecuteTopK(q, resolver_, 7, options);
    ASSERT_TRUE(r.ok()) << "h=" << h;
    EXPECT_EQ(r->algorithm_used, Algorithm::kCombined);
    EXPECT_TRUE(IsValidTopK(r->topk.items, *truth, 7)) << "h=" << h;
  }
}

TEST_F(ExecutorTest, AdaptiveCostModelDerivesCombinedPeriod) {
  // combined_period 0 means "derive": with a price model attached, CA's h
  // becomes the random/sorted price ratio; the run must be correct and
  // match an explicit run at that h, access count for access count.
  QueryPtr q = Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  CostModel model;
  model.random_unit = 3.0;

  ExecutorOptions adaptive;
  adaptive.algorithm = Algorithm::kCombined;
  adaptive.adaptive_cost_model = model;  // combined_period stays 0
  Result<ExecutionResult> derived = ExecuteTopK(q, resolver_, 5, adaptive);
  ASSERT_TRUE(derived.ok());

  ExecutorOptions pinned;
  pinned.algorithm = Algorithm::kCombined;
  pinned.combined_period = DefaultCombinedPeriod(model);  // = 3
  Result<ExecutionResult> explicit_run = ExecuteTopK(q, resolver_, 5, pinned);
  ASSERT_TRUE(explicit_run.ok());

  EXPECT_EQ(derived->topk.cost.sorted, explicit_run->topk.cost.sorted);
  EXPECT_EQ(derived->topk.cost.random, explicit_run->topk.cost.random);
  ASSERT_EQ(derived->topk.items.size(), explicit_run->topk.items.size());
  for (size_t r = 0; r < derived->topk.items.size(); ++r) {
    EXPECT_EQ(derived->topk.items[r].id, explicit_run->topk.items[r].id);
  }
}

TEST_F(ExecutorTest, AdaptiveDepthDerivationPreservesAnswersAndCounts) {
  // With a pool attached and prefetch_depth left at 0, the adaptive cost
  // model derives a depth; the determinism contract must hold vs serial.
  QueryPtr q = Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  Result<ExecutionResult> serial = ExecuteTopK(q, resolver_, 5);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(3);
  ExecutorOptions options;
  options.parallel.pool = &pool;
  options.adaptive_cost_model = CostModel{};
  Result<ExecutionResult> adaptive = ExecuteTopK(q, resolver_, 5, options);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_EQ(adaptive->algorithm_used, serial->algorithm_used);
  ASSERT_EQ(serial->topk.items.size(), adaptive->topk.items.size());
  for (size_t r = 0; r < serial->topk.items.size(); ++r) {
    EXPECT_EQ(serial->topk.items[r].id, adaptive->topk.items[r].id);
    EXPECT_EQ(serial->topk.items[r].grade, adaptive->topk.items[r].grade);
  }
  EXPECT_EQ(serial->topk.cost.sorted, adaptive->topk.cost.sorted);
  EXPECT_EQ(serial->topk.cost.random, adaptive->topk.cost.random);
}

TEST_F(ExecutorTest, AdaptiveModelNeverOverridesPinnedKnobs) {
  // A caller-pinned combined_period survives an attached cost model whose
  // derived period differs: the access counts must match a run with the
  // pinned period and no model.
  QueryPtr q = Query::And({Query::Atomic("A", "x"), Query::Atomic("B", "y")});
  CostModel model;
  model.random_unit = 7.0;  // would derive h=7

  ExecutorOptions pinned_with_model;
  pinned_with_model.algorithm = Algorithm::kCombined;
  pinned_with_model.combined_period = 2;
  pinned_with_model.adaptive_cost_model = model;
  Result<ExecutionResult> a = ExecuteTopK(q, resolver_, 5, pinned_with_model);
  ASSERT_TRUE(a.ok());

  ExecutorOptions pinned_only;
  pinned_only.algorithm = Algorithm::kCombined;
  pinned_only.combined_period = 2;
  Result<ExecutionResult> b = ExecuteTopK(q, resolver_, 5, pinned_only);
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a->topk.cost.sorted, b->topk.cost.sorted);
  EXPECT_EQ(a->topk.cost.random, b->topk.cost.random);
}

TEST(ExecutorEdgeTest, NullQueryRejected) {
  Result<ExecutionResult> r = ExecuteTopK(
      nullptr, [](const Query&) -> Result<GradedSource*> { return nullptr; },
      1);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(AlgorithmNameTest, AllNamesDistinct) {
  std::set<std::string> names;
  for (Algorithm a :
       {Algorithm::kAuto, Algorithm::kNaive, Algorithm::kFagin,
        Algorithm::kThreshold, Algorithm::kNoRandomAccess,
        Algorithm::kFilteredSimulation, Algorithm::kDisjunctionShortcut}) {
    EXPECT_TRUE(names.insert(AlgorithmName(a)).second);
  }
}

}  // namespace
}  // namespace fuzzydb
