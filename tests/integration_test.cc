// End-to-end tests across the full stack: the paper's CD-store running
// example — a relational subsystem (Artist='Beatles') joined with QBIC-like
// color and shape subsystems under Garlic-style middleware, queried through
// the SQL surface.

#include <gtest/gtest.h>

#include <set>

#include "catalog/catalog.h"
#include "image/qbic_source.h"
#include "middleware/composite_rule.h"
#include "middleware/naive.h"
#include "relational/relational_source.h"
#include "sql/interpreter.h"

namespace fuzzydb {
namespace {

// Lifts a concrete source into the factory's return type (the two implicit
// conversions unique_ptr<T> -> unique_ptr<GradedSource> -> Result<...> do
// not chain automatically).
template <typename T>
Result<std::unique_ptr<GradedSource>> WrapSource(T src) {
  std::unique_ptr<GradedSource> out = std::make_unique<T>(std::move(src));
  return out;
}

class CdStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 120 albums with synthetic cover images; ids shared across subsystems.
    ImageStoreOptions options;
    options.num_images = 120;
    options.palette_size = 27;
    options.seed = 4242;
    Result<ImageStore> store = ImageStore::Generate(options);
    ASSERT_TRUE(store.ok());
    store_ = std::make_unique<ImageStore>(std::move(*store));

    Schema schema = *Schema::Create({{"Artist", ValueType::kString},
                                     {"Title", ValueType::kString}});
    table_ = std::make_unique<Table>("cds", std::move(schema));
    ASSERT_TRUE(table_->CreateIndex("Artist").ok());
    const char* artists[] = {"Beatles", "Kinks", "Who", "Zombies"};
    for (size_t i = 0; i < 120; ++i) {
      ObjectId id = store_->image(i).id;
      ASSERT_TRUE(table_
                      ->Insert(id, {Value(std::string(artists[i % 4])),
                                    Value(std::string("Album #" +
                                                      std::to_string(i)))})
                      .ok());
    }

    // Register subsystems in the catalog.
    ASSERT_TRUE(catalog_
                    .RegisterAttribute(
                        "Artist",
                        [this](const std::string& target)
                            -> Result<std::unique_ptr<GradedSource>> {
                          Result<Predicate> pred = Predicate::Create(
                              table_->schema(), "Artist", CompareOp::kEq,
                              Value(target));
                          if (!pred.ok()) return pred.status();
                          Result<RelationalSource> src =
                              RelationalSource::Create(table_.get(),
                                                       std::move(*pred));
                          if (!src.ok()) return src.status();
                          return WrapSource(std::move(*src));
                        })
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterAttribute(
                        "AlbumColor",
                        [this](const std::string& target)
                            -> Result<std::unique_ptr<GradedSource>> {
                          Rgb rgb = target == "red"
                                        ? Rgb{1.0, 0.1, 0.1}
                                        : Rgb{0.1, 0.1, 1.0};
                          Result<QbicColorSource> src =
                              QbicColorSource::Create(
                                  store_.get(),
                                  TargetHistogram(store_->palette(), rgb),
                                  "AlbumColor~" + target);
                          if (!src.ok()) return src.status();
                          return WrapSource(std::move(*src));
                        })
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterAttribute(
                        "CoverShape",
                        [this](const std::string& target)
                            -> Result<std::unique_ptr<GradedSource>> {
                          size_t sides = target == "round" ? 24 : 3;
                          Result<QbicShapeSource> src =
                              QbicShapeSource::Create(
                                  store_.get(), Polygon::Regular(sides),
                                  "CoverShape~" + target);
                          if (!src.ok()) return src.status();
                          return WrapSource(std::move(*src));
                        })
                    .ok());
  }

  std::unique_ptr<ImageStore> store_;
  std::unique_ptr<Table> table_;
  Catalog catalog_;
};

TEST_F(CdStoreTest, RunningExampleOnlyReturnsBeatlesAlbums) {
  // (Artist='Beatles') AND (AlbumColor='red'): the paper's expected result —
  // only Beatles albums get a nonzero grade, ordered by color match.
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 10 FROM cds WHERE Artist = 'Beatles' AND "
      "AlbumColor ~ 'red'",
      &catalog_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->topk.items.size(), 10u);
  double prev = 1.1;
  for (const GradedObject& g : r->topk.items) {
    Result<const std::vector<Value>*> row = table_->Get(g.id);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((**row)[0].AsString(), "Beatles") << "object " << g.id;
    EXPECT_GT(g.grade, 0.0);
    EXPECT_LE(g.grade, prev + 1e-12);
    prev = g.grade;
  }
}

TEST_F(CdStoreTest, AllAlgorithmsAgreeOnTheRunningExample) {
  const std::string sql =
      "SELECT TOP 5 FROM cds WHERE Artist = 'Beatles' AND "
      "AlbumColor ~ 'red' VIA ";
  Result<ExecutionResult> naive = RunSelect(sql + "naive", &catalog_);
  ASSERT_TRUE(naive.ok());
  for (const char* algo : {"fagin", "ta", "filtered"}) {
    Result<ExecutionResult> r = RunSelect(sql + algo, &catalog_);
    ASSERT_TRUE(r.ok()) << algo;
    ASSERT_EQ(r->topk.items.size(), naive->topk.items.size()) << algo;
    for (size_t i = 0; i < r->topk.items.size(); ++i) {
      EXPECT_EQ(r->topk.items[i].id, naive->topk.items[i].id)
          << algo << " rank " << i;
      EXPECT_NEAR(r->topk.items[i].grade, naive->topk.items[i].grade, 1e-12);
    }
  }
}

TEST_F(CdStoreTest, TwoMultimediaConjunctsWithWeights) {
  // (Color='red') AND (Shape='round'), caring twice as much about color
  // (paper §5's motivating example), end to end through SQL.
  Result<ExecutionResult> weighted = RunSelect(
      "SELECT TOP 5 FROM cds WHERE AlbumColor ~ 'red' AND "
      "CoverShape ~ 'round' WEIGHTS (2, 1)",
      &catalog_);
  ASSERT_TRUE(weighted.ok()) << weighted.status().ToString();
  ASSERT_EQ(weighted->topk.items.size(), 5u);

  // Cross-check grades against a direct Fagin–Wimmers computation.
  Result<GradedSource*> color = catalog_.Resolve("AlbumColor", "red");
  Result<GradedSource*> shape = catalog_.Resolve("CoverShape", "round");
  ASSERT_TRUE(color.ok() && shape.ok());
  Weighting theta = *Weighting::FromSliders({2.0, 1.0});
  for (const GradedObject& g : weighted->topk.items) {
    std::vector<double> scores{(*color)->RandomAccess(g.id),
                               (*shape)->RandomAccess(g.id)};
    EXPECT_NEAR(g.grade, FaginWimmersScore(*MinRule(), theta, scores), 1e-12);
  }
}

TEST_F(CdStoreTest, SelectiveRelationalConjunctIsCheapViaTA) {
  // With only 30 Beatles albums out of 120, TA resolves the query without
  // streaming everything from the color subsystem.
  Result<ExecutionResult> ta = RunSelect(
      "SELECT TOP 3 FROM cds WHERE Artist = 'Beatles' AND "
      "AlbumColor ~ 'red' VIA ta",
      &catalog_);
  Result<ExecutionResult> naive = RunSelect(
      "SELECT TOP 3 FROM cds WHERE Artist = 'Beatles' AND "
      "AlbumColor ~ 'red' VIA naive",
      &catalog_);
  ASSERT_TRUE(ta.ok() && naive.ok());
  EXPECT_LT(ta->topk.cost.total(), naive->topk.cost.total());
}

TEST_F(CdStoreTest, DisjunctionAcrossSubsystemTypes) {
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 4 FROM cds WHERE Artist = 'Zombies' OR "
      "AlbumColor ~ 'blue'",
      &catalog_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algorithm_used, Algorithm::kDisjunctionShortcut);
  // Zombies albums have grade exactly 1 under max.
  EXPECT_DOUBLE_EQ(r->topk.items[0].grade, 1.0);
}

TEST_F(CdStoreTest, ThreeWayMultimediaConjunction) {
  // Color AND shape AND texture — all three QBIC dimensions at once.
  ASSERT_TRUE(catalog_
                  .RegisterAttribute(
                      "CoverTexture",
                      [this](const std::string&)
                          -> Result<std::unique_ptr<GradedSource>> {
                        TextureFeatures smooth;
                        smooth.coarseness = 0.8;
                        smooth.contrast = 0.2;
                        smooth.directionality = 0.1;
                        Result<QbicTextureSource> src =
                            QbicTextureSource::Create(store_.get(), smooth,
                                                      "CoverTexture~smooth");
                        if (!src.ok()) return src.status();
                        return WrapSource(std::move(*src));
                      })
                  .ok());
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 5 FROM cds WHERE AlbumColor ~ 'red' AND "
      "CoverShape ~ 'round' AND CoverTexture ~ 'smooth'",
      &catalog_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->topk.items.size(), 5u);

  // Cross-check against the naive plan.
  Result<ExecutionResult> naive = RunSelect(
      "SELECT TOP 5 FROM cds WHERE AlbumColor ~ 'red' AND "
      "CoverShape ~ 'round' AND CoverTexture ~ 'smooth' VIA naive",
      &catalog_);
  ASSERT_TRUE(naive.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r->topk.items[i].id, naive->topk.items[i].id);
    EXPECT_NEAR(r->topk.items[i].grade, naive->topk.items[i].grade, 1e-12);
  }
}

TEST_F(CdStoreTest, ExplainPlansTheRunningExample) {
  Result<PlanChoice> plan = ExplainSelect(
      "EXPLAIN SELECT TOP 10 FROM cds WHERE Artist = 'Beatles' AND "
      "AlbumColor ~ 'red'",
      &catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->algorithm, Algorithm::kNaive);
  EXPECT_GE(plan->considered.size(), 5u);
  // The plan text is renderable.
  EXPECT_NE(FormatPlan(*plan).find("plan:"), std::string::npos);
}

TEST_F(CdStoreTest, OptimizedExecutionMatchesForcedPlans) {
  QueryPtr query = Query::And({Query::Atomic("Artist", "Beatles"),
                               Query::Atomic("AlbumColor", "red")});
  PlanChoice choice;
  Result<ExecutionResult> optimized = ExecuteOptimized(
      query, catalog_.AsResolver(), 5, CostModel{}, &choice);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_EQ(optimized->algorithm_used, choice.algorithm);
  Result<ExecutionResult> naive = RunSelect(
      "SELECT TOP 5 FROM cds WHERE Artist = 'Beatles' AND "
      "AlbumColor ~ 'red' VIA naive",
      &catalog_);
  ASSERT_TRUE(naive.ok());
  // CA/NRA may report certified lower bounds; compare the answer sets.
  ASSERT_EQ(optimized->topk.items.size(), naive->topk.items.size());
  std::set<ObjectId> got, want;
  for (const GradedObject& g : optimized->topk.items) got.insert(g.id);
  for (const GradedObject& g : naive->topk.items) want.insert(g.id);
  EXPECT_EQ(got, want);
}

TEST_F(CdStoreTest, NegationQueryStillAnswersCorrectly) {
  Result<ExecutionResult> r = RunSelect(
      "SELECT TOP 5 FROM cds WHERE AlbumColor ~ 'red' AND NOT "
      "Artist = 'Beatles'",
      &catalog_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algorithm_used, Algorithm::kNaive);
  for (const GradedObject& g : r->topk.items) {
    Result<const std::vector<Value>*> row = table_->Get(g.id);
    ASSERT_TRUE(row.ok());
    EXPECT_NE((**row)[0].AsString(), "Beatles");
  }
}

}  // namespace
}  // namespace fuzzydb
