#include "image/qbic_source.h"

#include <gtest/gtest.h>

#include "middleware/fagin.h"
#include "middleware/naive.h"

namespace fuzzydb {
namespace {

class QbicSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImageStoreOptions options;
    options.num_images = 80;
    options.palette_size = 27;
    options.seed = 7;
    Result<ImageStore> store = ImageStore::Generate(options);
    ASSERT_TRUE(store.ok());
    store_ = std::make_unique<ImageStore>(std::move(*store));
  }

  std::unique_ptr<ImageStore> store_;
};

TEST_F(QbicSourceTest, ColorSourceSortedOrderMatchesGrades) {
  Histogram target = TargetHistogram(store_->palette(), {1.0, 0.1, 0.1});
  Result<QbicColorSource> src =
      QbicColorSource::Create(store_.get(), target, "Color~red");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->Size(), 80u);
  EXPECT_EQ(src->name(), "Color~red");

  double prev = 1.1;
  size_t count = 0;
  while (auto next = src->NextSorted()) {
    EXPECT_LE(next->grade, prev + 1e-12);
    EXPECT_DOUBLE_EQ(src->RandomAccess(next->id), next->grade);
    prev = next->grade;
    ++count;
  }
  EXPECT_EQ(count, 80u);
}

TEST_F(QbicSourceTest, ColorSourceValidatesTarget) {
  EXPECT_FALSE(QbicColorSource::Create(nullptr, Histogram{1.0}).ok());
  EXPECT_FALSE(
      QbicColorSource::Create(store_.get(), Histogram{0.5, 0.5}).ok());
  Histogram bad(27, 0.0);  // zero mass
  EXPECT_FALSE(QbicColorSource::Create(store_.get(), bad).ok());
}

TEST_F(QbicSourceTest, SelfQueryRanksTheQueryImageFirst) {
  const ImageRecord& probe = store_->image(13);
  Result<QbicColorSource> src =
      QbicColorSource::Create(store_.get(), probe.histogram);
  ASSERT_TRUE(src.ok());
  std::optional<GradedObject> top = src->NextSorted();
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->id, probe.id);
  EXPECT_NEAR(top->grade, 1.0, 1e-9);
}

TEST_F(QbicSourceTest, ShapeSourceGradesByTurningDistance) {
  Polygon target = Polygon::Regular(6);
  Result<QbicShapeSource> src =
      QbicShapeSource::Create(store_.get(), target, "Shape~hex");
  ASSERT_TRUE(src.ok());
  double prev = 1.1;
  while (auto next = src->NextSorted()) {
    EXPECT_LE(next->grade, prev + 1e-12);
    EXPECT_GT(next->grade, 0.0);
    EXPECT_LE(next->grade, 1.0);
    prev = next->grade;
  }
  EXPECT_FALSE(QbicShapeSource::Create(nullptr, target).ok());
  EXPECT_FALSE(QbicShapeSource::Create(store_.get(), target, "x", 2).ok());
}

TEST_F(QbicSourceTest, ShapeMethodsProduceDistinctValidRankings) {
  Polygon target = Polygon::Regular(5);
  for (ShapeMethod method :
       {ShapeMethod::kTurningFunction, ShapeMethod::kHuMoments,
        ShapeMethod::kHausdorff}) {
    Result<QbicShapeSource> src = QbicShapeSource::Create(
        store_.get(), target, "Shape", 64, method);
    ASSERT_TRUE(src.ok());
    double prev = 1.1;
    size_t count = 0;
    while (auto next = src->NextSorted()) {
      EXPECT_LE(next->grade, prev + 1e-12);
      EXPECT_GT(next->grade, 0.0);
      prev = next->grade;
      ++count;
    }
    EXPECT_EQ(count, store_->size());
  }
  // The three methods rank differently in general (they are invariant to
  // different transform groups), so at least two top answers must differ
  // across methods for a generic target.
  Result<QbicShapeSource> turning = QbicShapeSource::Create(
      store_.get(), target, "t", 64, ShapeMethod::kTurningFunction);
  Result<QbicShapeSource> hausdorff = QbicShapeSource::Create(
      store_.get(), target, "h", 64, ShapeMethod::kHausdorff);
  ASSERT_TRUE(turning.ok() && hausdorff.ok());
  EXPECT_NE(turning->NextSorted()->id, hausdorff->NextSorted()->id);
}

TEST_F(QbicSourceTest, ColorAndShapeConjunctionViaFagin) {
  // The paper's (Color='red') AND (Shape='round') example on real adapters.
  Histogram red = TargetHistogram(store_->palette(), {1.0, 0.1, 0.1});
  Polygon round = Polygon::Regular(24);  // "round" = many-sided
  Result<QbicColorSource> color =
      QbicColorSource::Create(store_.get(), red, "Color~red");
  Result<QbicShapeSource> shape =
      QbicShapeSource::Create(store_.get(), round, "Shape~round");
  ASSERT_TRUE(color.ok() && shape.ok());
  std::vector<GradedSource*> sources{&*color, &*shape};
  ScoringRulePtr min = MinRule();
  Result<GradedSet> truth = NaiveAllGrades(sources, *min);
  ASSERT_TRUE(truth.ok());
  Result<TopKResult> top = FaginTopK(sources, *min, 10);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(IsValidTopK(top->items, *truth, 10));
  EXPECT_LT(top->cost.total(), 2u * 80u);  // beats streaming everything
}

}  // namespace
}  // namespace fuzzydb
