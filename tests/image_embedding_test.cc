// The eigen-space embedding layer: embedded Euclidean distance must agree
// with the quadratic form Matrix::QuadraticForm to 1e-9, every prefix of an
// embedding must lower-bound the full distance, and the cascaded filter
// must return exactly the same top-k (indices, order, distances) as the
// batched exact kernel — including under duplicates and degenerate
// palettes.

#include "image/embedding_store.h"

#include <gtest/gtest.h>

#include <cmath>

#include "image/bounding.h"
#include "image/image_store.h"

namespace fuzzydb {
namespace {

std::vector<Histogram> RandomDatabase(Rng* rng, size_t n, size_t bins) {
  std::vector<Histogram> db;
  db.reserve(n);
  for (size_t i = 0; i < n; ++i) db.push_back(RandomHistogram(rng, bins));
  return db;
}

TEST(EmbeddingTest, EmbeddedDistanceMatchesQuadraticForm) {
  Rng rng(1009);
  for (size_t bins : {8u, 27u, 64u}) {
    Palette palette = Palette::Uniform(bins, &rng);
    QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
    for (int trial = 0; trial < 50; ++trial) {
      Histogram x = RandomHistogram(&rng, bins);
      Histogram y = RandomHistogram(&rng, bins);
      std::vector<double> z(bins);
      for (size_t i = 0; i < bins; ++i) z[i] = x[i] - y[i];
      double reference =
          std::sqrt(std::max(qfd.similarity().QuadraticForm(z), 0.0));
      double embedded = EuclideanDistance(qfd.Embed(x), qfd.Embed(y));
      EXPECT_NEAR(embedded, reference, 1e-9) << "bins " << bins;
      EXPECT_NEAR(embedded, qfd.Distance(x, y), 1e-9) << "bins " << bins;
    }
  }
}

TEST(EmbeddingTest, EveryPrefixLowerBoundsTheDistance) {
  Rng rng(1013);
  Palette palette = Palette::Uniform(64, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> ex = qfd.Embed(RandomHistogram(&rng, 64));
    std::vector<double> ey = qfd.Embed(RandomHistogram(&rng, 64));
    double full = 0.0;
    for (size_t j = 0; j < 64; ++j) {
      double diff = ex[j] - ey[j];
      full += diff * diff;
    }
    double partial = 0.0;
    for (size_t j = 0; j < 64; ++j) {
      double diff = ex[j] - ey[j];
      partial += diff * diff;
      // Partial sums are nondecreasing and never exceed the full squared
      // distance: formula (2) at every prefix length.
      EXPECT_LE(partial, full + 1e-12);
    }
    EXPECT_NEAR(partial, full, 1e-12);
  }
}

TEST(EmbeddingTest, BatchDistancesMatchesPairwiseDistances) {
  Rng rng(1019);
  Palette palette = Palette::Uniform(27, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  std::vector<Histogram> db = RandomDatabase(&rng, 100, 27);
  EmbeddingStore store = *EmbeddingStore::Build(qfd, db);
  ASSERT_EQ(store.size(), db.size());
  ASSERT_EQ(store.dim(), 27u);

  Histogram target = RandomHistogram(&rng, 27);
  std::vector<double> target_embedding = qfd.Embed(target);
  std::vector<double> batch(db.size());
  store.BatchDistances(target_embedding, batch);
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_NEAR(batch[i], qfd.Distance(db[i], target), 1e-9) << "row " << i;
    EXPECT_DOUBLE_EQ(
        batch[i], EuclideanDistance(store.Row(i), target_embedding));
  }
}

TEST(EmbeddingTest, BuildValidates) {
  Rng rng(1021);
  Palette palette = Palette::Uniform(8, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  EXPECT_FALSE(EmbeddingStore::Build(qfd, {}).ok());
  EXPECT_FALSE(EmbeddingStore::Build(qfd, {Histogram(5, 0.2)}).ok());
}

TEST(EmbeddingTest, ImageStoreEmbedsAtIngest) {
  ImageStoreOptions options;
  options.num_images = 50;
  options.palette_size = 27;
  Result<ImageStore> store = ImageStore::Generate(options);
  ASSERT_TRUE(store.ok());
  const EmbeddingStore& embeddings = store->embeddings();
  ASSERT_EQ(embeddings.size(), store->size());
  ASSERT_EQ(embeddings.dim(), 27u);
  const QuadraticFormDistance& qfd = store->color_distance();
  for (size_t i = 0; i < store->size(); i += 9) {
    std::vector<double> expected = qfd.Embed(store->image(i).histogram);
    std::span<const double> row = embeddings.Row(i);
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_DOUBLE_EQ(row[j], expected[j]);
    }
  }
}

class CascadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1031);
    palette_ = Palette::Uniform(64, &rng);
    qfd_ = *QuadraticFormDistance::Create(palette_);
    db_ = RandomDatabase(&rng, 500, 64);
    store_ = *EmbeddingStore::Build(qfd_, db_);
  }

  // Cascade output must equal ExactKnn output *exactly*: same indices, same
  // order, bit-identical distances.
  void ExpectIdentical(const std::vector<std::pair<size_t, double>>& got,
                       const std::vector<std::pair<size_t, double>>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first) << "rank " << i;
      EXPECT_EQ(got[i].second, want[i].second) << "rank " << i;
    }
  }

  Palette palette_;
  QuadraticFormDistance qfd_;
  std::vector<Histogram> db_;
  EmbeddingStore store_;
};

TEST_F(CascadeTest, MatchesExactKnnAcrossOptionsAndQueries) {
  Rng rng(1033);
  for (int q = 0; q < 8; ++q) {
    std::vector<double> target = qfd_.Embed(RandomHistogram(&rng, 64));
    std::vector<std::pair<size_t, double>> exact = store_.ExactKnn(target, 10);
    for (CascadeOptions options :
         {CascadeOptions{1, 1}, CascadeOptions{3, 7}, CascadeOptions{8, 16},
          CascadeOptions{64, 16}}) {
      CascadeStats stats;
      ExpectIdentical(store_.CascadeKnn(target, 10, options, &stats), exact);
      // Level -1 scans every object; the float prefix bound then runs only
      // for the survivors the int8 bound could not dismiss.
      EXPECT_EQ(stats.quantized_bound_computations, db_.size());
      EXPECT_LE(stats.bound_computations, db_.size());
      options.use_quantized = false;
      CascadeStats fstats;
      ExpectIdentical(store_.CascadeKnn(target, 10, options, &fstats), exact);
      EXPECT_EQ(fstats.quantized_bound_computations, 0u);
      EXPECT_EQ(fstats.bound_computations, db_.size());
    }
  }
}

TEST_F(CascadeTest, MatchesLegacyExactKnnIndicesWithin1e9) {
  // Cross-path equivalence: the cascade (embedded arithmetic) against the
  // seed ExactKnn (quadratic-form arithmetic).
  Rng rng(1039);
  for (int q = 0; q < 5; ++q) {
    Histogram target = RandomHistogram(&rng, 64);
    std::vector<std::pair<size_t, double>> legacy =
        ExactKnn(qfd_, db_, target, 10);
    std::vector<std::pair<size_t, double>> cascade =
        store_.CascadeKnn(qfd_.Embed(target), 10);
    ASSERT_EQ(cascade.size(), legacy.size());
    for (size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(cascade[i].first, legacy[i].first) << "rank " << i;
      EXPECT_NEAR(cascade[i].second, legacy[i].second, 1e-9);
    }
  }
}

TEST_F(CascadeTest, RefinesFarFewerCandidatesThanTwoLevelFilter) {
  Rng rng(1049);
  EigenFilter filter = *EigenFilter::Create(qfd_, 3);
  size_t two_level_full = 0;
  size_t cascade_full = 0;
  for (int q = 0; q < 5; ++q) {
    Histogram target = RandomHistogram(&rng, 64);
    FilteredSearchStats filtered_stats;
    ASSERT_TRUE(
        FilteredKnn(qfd_, filter, db_, target, 10, &filtered_stats).ok());
    CascadeStats cascade_stats;
    store_.CascadeKnn(qfd_.Embed(target), 10, {}, &cascade_stats);
    two_level_full += filtered_stats.full_distance_computations;
    cascade_full += cascade_stats.full_distance_computations;
  }
  // Equal recall (both exact); the cascade must carry fewer candidates to
  // full precision than the two-level filter refines.
  EXPECT_LT(cascade_full, two_level_full);
}

TEST_F(CascadeTest, EdgeCases) {
  std::vector<double> target = qfd_.Embed(db_[0]);
  // k = 0: empty answer, no error.
  EXPECT_TRUE(store_.CascadeKnn(target, 0).empty());
  EXPECT_TRUE(store_.ExactKnn(target, 0).empty());
  // k >= N clamps to the full collection, still exactly ordered.
  std::vector<std::pair<size_t, double>> all =
      store_.CascadeKnn(target, db_.size() + 100);
  ExpectIdentical(all, store_.ExactKnn(target, db_.size()));
  EXPECT_EQ(all.size(), db_.size());
  // Self-query: the query object ranks first at distance exactly 0.
  EXPECT_EQ(all[0].first, 0u);
  EXPECT_EQ(all[0].second, 0.0);
  // Single-element store.
  EmbeddingStore one = *EmbeddingStore::Build(qfd_, {db_[0]});
  std::vector<std::pair<size_t, double>> single = one.CascadeKnn(target, 5);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].first, 0u);
}

TEST_F(CascadeTest, DuplicateDistancesBreakTiesByIndexDeterministically) {
  // A database of few distinct histograms, each repeated many times: almost
  // every comparison is a tie, so any nondeterministic tie handling shows.
  Rng rng(1051);
  std::vector<Histogram> distinct = RandomDatabase(&rng, 5, 64);
  std::vector<Histogram> db;
  for (int copy = 0; copy < 20; ++copy) {
    for (const Histogram& h : distinct) db.push_back(h);
  }
  EmbeddingStore store = *EmbeddingStore::Build(qfd_, db);
  std::vector<double> target = qfd_.Embed(distinct[2]);
  std::vector<std::pair<size_t, double>> exact = store.ExactKnn(target, 23);
  // Ties resolve by ascending index.
  for (size_t i = 1; i < exact.size(); ++i) {
    if (exact[i].second == exact[i - 1].second) {
      EXPECT_LT(exact[i - 1].first, exact[i].first);
    }
  }
  for (CascadeOptions options :
       {CascadeOptions{1, 4}, CascadeOptions{8, 16}, CascadeOptions{64, 16}}) {
    ExpectIdentical(store.CascadeKnn(target, 23, options), exact);
  }
}

TEST(CascadeDegenerateTest, FlatSpectrumPaletteStaysExact) {
  // A regular-tetrahedron palette makes all colors mutually equidistant:
  // A = I, so B = P has the flattest possible spectrum and a short prefix
  // captures the least energy any palette allows (1/(k-1) per dimension).
  // The bound is nearly uninformative — correctness must not depend on it.
  Result<Palette> palette = Palette::FromColors({{0.0, 0.0, 0.0},
                                                 {1.0, 1.0, 0.0},
                                                 {1.0, 0.0, 1.0},
                                                 {0.0, 1.0, 1.0}});
  ASSERT_TRUE(palette.ok());
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(*palette);
  EigenFilter filter = *EigenFilter::Create(qfd, 1);
  EXPECT_NEAR(filter.CapturedEnergy(), 1.0 / 3.0, 1e-6);

  Rng rng(1061);
  std::vector<Histogram> db = RandomDatabase(&rng, 200, 4);
  EmbeddingStore store = *EmbeddingStore::Build(qfd, db);
  for (int q = 0; q < 5; ++q) {
    Histogram target = RandomHistogram(&rng, 4, 2);
    std::vector<double> target_embedding = qfd.Embed(target);
    std::vector<std::pair<size_t, double>> exact =
        store.ExactKnn(target_embedding, 10);
    std::vector<std::pair<size_t, double>> cascade =
        store.CascadeKnn(target_embedding, 10, {1, 1});
    ASSERT_EQ(cascade.size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(cascade[i].first, exact[i].first);
      EXPECT_EQ(cascade[i].second, exact[i].second);
    }
    // The legacy two-level filter must also stay exact here.
    Result<std::vector<std::pair<size_t, double>>> filtered =
        FilteredKnn(qfd, filter, db, target, 10);
    ASSERT_TRUE(filtered.ok());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ((*filtered)[i].first, exact[i].first);
    }
  }
}

TEST(CascadeDegenerateTest, ClusteredPaletteCollapsesDistancesButStaysExact) {
  // Two tight clusters of nearly identical colors: one dominant eigenpair
  // (the between-cluster axis) and the rest ~0 — within-cluster distances
  // nearly collapse, producing masses of near-ties.
  std::vector<Rgb> colors;
  for (int i = 0; i < 4; ++i) {
    double eps = 1e-6 * static_cast<double>(i);
    colors.push_back({0.1 + eps, 0.1, 0.1});
    colors.push_back({0.9 - eps, 0.9, 0.9});
  }
  Result<Palette> palette = Palette::FromColors(std::move(colors));
  ASSERT_TRUE(palette.ok());
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(*palette);

  Rng rng(1063);
  std::vector<Histogram> db = RandomDatabase(&rng, 200, 8);
  EmbeddingStore store = *EmbeddingStore::Build(qfd, db);
  for (int q = 0; q < 5; ++q) {
    std::vector<double> target = qfd.Embed(RandomHistogram(&rng, 8));
    std::vector<std::pair<size_t, double>> exact = store.ExactKnn(target, 15);
    std::vector<std::pair<size_t, double>> cascade =
        store.CascadeKnn(target, 15, {2, 2});
    ASSERT_EQ(cascade.size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(cascade[i].first, exact[i].first) << "rank " << i;
      EXPECT_EQ(cascade[i].second, exact[i].second) << "rank " << i;
    }
  }
}

}  // namespace
}  // namespace fuzzydb
