// The AlignedArray alignment contract is load-bearing for the SIMD tier:
// the int8 kernels and the lane-blocked float kernels both assume rows that
// start on cache-line boundaries and may read whole cache lines. These
// tests pin the guarantee — 64-byte start, whole-line padding, zeroed
// storage — at element types and deliberately awkward sizes, plus the
// value semantics the stores rely on.

#include "common/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "image/embedding_store.h"
#include "image/quadratic_distance.h"

namespace fuzzydb {
namespace {

template <typename T>
bool Aligned64(const T* p) {
  return reinterpret_cast<uintptr_t>(p) % AlignedArray<T>::kAlignment == 0;
}

TEST(AlignedArrayTest, AlignmentIsPinnedAt64Bytes) {
  // 64 = one x86 cache line = a full 512-bit vector: both kernels assume
  // it. Changing this constant is an ABI break for every stored buffer.
  static_assert(AlignedArray<double>::kAlignment == 64);
  static_assert(AlignedArray<int8_t>::kAlignment == 64);
}

TEST(AlignedArrayTest, OddSizesStillStartOnACacheLine) {
  for (size_t n : {1u, 3u, 7u, 63u, 64u, 65u, 1000u, 4097u}) {
    AlignedArray<double> d(n);
    AlignedArray<int8_t> b(n);
    AlignedArray<int32_t> w(n);
    EXPECT_TRUE(Aligned64(d.data())) << "double n=" << n;
    EXPECT_TRUE(Aligned64(b.data())) << "int8 n=" << n;
    EXPECT_TRUE(Aligned64(w.data())) << "int32 n=" << n;
    EXPECT_EQ(d.size(), n);
    EXPECT_EQ(b.size(), n);
  }
}

TEST(AlignedArrayTest, StorageAndLinePaddingAreZeroInitialized) {
  // Whole-cacheline kernels may read past size() to the end of the last
  // line; that read must be defined *and* see zeros (the int8 pad enters
  // the block sums, where only zero is admissible).
  AlignedArray<int8_t> b(70);  // 70 bytes -> 128-byte allocation
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0) << i;
  const int8_t* raw = b.data();
  for (size_t i = b.size(); i < 2 * AlignedArray<int8_t>::kAlignment; ++i) {
    EXPECT_EQ(raw[i], 0) << "pad byte " << i;
  }
}

TEST(AlignedArrayTest, CopyIsDeepAndMoveTransfersOwnership) {
  AlignedArray<double> a(17);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i) + 0.5;
  AlignedArray<double> copy(a);
  ASSERT_EQ(copy.size(), a.size());
  EXPECT_NE(copy.data(), a.data());
  EXPECT_TRUE(Aligned64(copy.data()));
  copy[3] = -1.0;
  EXPECT_EQ(a[3], 3.5);

  const double* original = a.data();
  AlignedArray<double> moved(std::move(a));
  EXPECT_EQ(moved.data(), original);
  EXPECT_EQ(moved.size(), 17u);
  EXPECT_EQ(a.size(), 0u);      // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.data(), nullptr); // NOLINT(bugprone-use-after-move)

  AlignedArray<double> assigned;
  assigned = moved;  // copy-assign
  ASSERT_EQ(assigned.size(), 17u);
  EXPECT_EQ(assigned[16], 16.5);
}

TEST(AlignedArrayTest, EmptyArrayIsValidAndNull) {
  AlignedArray<double> empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.data(), nullptr);
  AlignedArray<double> sized(0);
  EXPECT_EQ(sized.data(), nullptr);
  AlignedArray<double> copy(empty);
  EXPECT_EQ(copy.size(), 0u);
}

TEST(AlignedArrayTest, EveryEmbeddingStoreRowStartsOnACacheLine) {
  // The store pads its row stride to whole cache lines; audit the claim at
  // dimensions around the 8-double line boundary, including the ingest-time
  // constructor path.
  Rng rng(77);
  for (size_t bins : {3u, 8u, 9u, 27u, 64u}) {
    Palette palette = Palette::Uniform(bins, &rng);
    QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
    std::vector<Histogram> db;
    for (size_t i = 0; i < 5; ++i) db.push_back(RandomHistogram(&rng, bins));
    EmbeddingStore store = *EmbeddingStore::Build(qfd, db);
    EXPECT_GE(store.stride(), store.dim());
    for (size_t i = 0; i < store.size(); ++i) {
      EXPECT_TRUE(Aligned64(store.Row(i).data()))
          << "bins=" << bins << " row=" << i;
    }
    EmbeddingStore sized(4, bins);
    for (size_t i = 0; i < sized.size(); ++i) {
      EXPECT_TRUE(Aligned64(sized.MutableRow(i).data()))
          << "sized bins=" << bins << " row=" << i;
    }
  }
}

}  // namespace
}  // namespace fuzzydb
