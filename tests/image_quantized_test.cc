// The quantized tier's two load-bearing claims, tested directly:
//
//  1. Admissibility by construction — QuantizedStore::LowerBound2 never
//     exceeds the exact squared embedding distance, for every (query, row)
//     pair, at zero tolerance. Not statistically: the bound carries its own
//     safety margin, so a single overshoot is a bug.
//  2. Answer preservation — CascadeKnn with the int8 level -1 engaged is
//     bit-identical to ExactKnn (same indices, same order, same distance
//     bits) at every shard count, under tie storms, and on adversarially
//     scaled data.

#include "image/quantized_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/squared_distance.h"
#include "image/embedding_store.h"
#include "image/quadratic_distance.h"

namespace fuzzydb {
namespace {

std::vector<Histogram> RandomDatabase(Rng* rng, size_t n, size_t bins) {
  std::vector<Histogram> db;
  db.reserve(n);
  for (size_t i = 0; i < n; ++i) db.push_back(RandomHistogram(rng, bins));
  return db;
}

double ExactSquared(const EmbeddingStore& store, size_t i,
                    std::span<const double> target) {
  SquaredDistanceAccumulator acc;
  acc.Accumulate(store.Row(i).data(), target.data(), 0, store.dim());
  return acc.Total();
}

std::vector<size_t> ShardCounts() {
  return {1, 2, 7, std::max<size_t>(1, std::thread::hardware_concurrency())};
}

void ExpectIdentical(const std::vector<std::pair<size_t, double>>& got,
                     const std::vector<std::pair<size_t, double>>& want,
                     const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first) << label << " rank " << i;
    EXPECT_EQ(got[i].second, want[i].second) << label << " rank " << i;
  }
}

TEST(QuantizedStoreTest, LowerBoundIsAdmissibleForEveryPairAcrossBinCounts) {
  Rng rng(6007);
  for (size_t bins : {8u, 27u, 64u}) {
    Palette palette = Palette::Uniform(bins, &rng);
    QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
    EmbeddingStore store = *EmbeddingStore::Build(
        qfd, RandomDatabase(&rng, 120, bins));
    ASSERT_TRUE(store.has_quantized());
    const QuantizedStore& qs = store.quantized();
    EXPECT_EQ(qs.size(), store.size());
    EXPECT_EQ(qs.dim(), store.dim());
    for (int q = 0; q < 6; ++q) {
      // Mix of in-distribution targets and perturbed stored rows.
      std::vector<double> target;
      if (q % 2 == 0) {
        target = qfd.Embed(RandomHistogram(&rng, bins));
      } else {
        std::span<const double> row = store.Row(q % store.size());
        target.assign(row.begin(), row.end());
        for (double& v : target) v += 0.05 * (rng.NextDouble() - 0.5);
      }
      const QuantizedStore::EncodedQuery enc = qs.EncodeQuery(target);
      for (size_t i = 0; i < store.size(); ++i) {
        const double bound = qs.LowerBound2(enc, i);
        const double exact = ExactSquared(store, i, target);
        ASSERT_LE(bound, exact)
            << "bins=" << bins << " q=" << q << " row=" << i;
        ASSERT_GE(bound, 0.0);
      }
    }
  }
}

TEST(QuantizedStoreTest, StoredCodesNeverClampAndResidualsAreExact) {
  Rng rng(6011);
  Palette palette = Palette::Uniform(27, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  EmbeddingStore store =
      *EmbeddingStore::Build(qfd, RandomDatabase(&rng, 40, 27));
  const QuantizedStore& qs = store.quantized();
  for (size_t i = 0; i < qs.size(); ++i) {
    std::span<const int8_t> codes = qs.RowCodes(i);
    double residual_sq = 0.0;
    for (size_t j = 0; j < qs.dim(); ++j) {
      ASSERT_GE(codes[j], -simd::kInt8CodeMax);
      ASSERT_LE(codes[j], simd::kInt8CodeMax);
      const double err = store.Row(i)[j] -
                         static_cast<double>(codes[j]) *
                             qs.scale(j / QuantizedStore::kBlockDim);
      residual_sq += err * err;
    }
    // Padding dims must stay zero codes.
    for (size_t j = qs.dim(); j < qs.padded_dim(); ++j) {
      ASSERT_EQ(codes[j], 0);
    }
    EXPECT_DOUBLE_EQ(qs.row_residual(i), std::sqrt(residual_sq)) << i;
  }
}

TEST(QuantizedStoreTest, FarOutOfRangeTargetsClampButStayAdmissible) {
  // Query values 1000x beyond the data's range force query-side clamping;
  // clamping grows the query residual, which may only weaken the bound.
  Rng rng(6029);
  Palette palette = Palette::Uniform(16, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  EmbeddingStore store =
      *EmbeddingStore::Build(qfd, RandomDatabase(&rng, 60, 16));
  const QuantizedStore& qs = store.quantized();
  std::vector<double> target(store.dim());
  for (size_t j = 0; j < target.size(); ++j) {
    target[j] = 1000.0 * (rng.NextDouble() - 0.5);
  }
  const QuantizedStore::EncodedQuery enc = qs.EncodeQuery(target);
  for (size_t i = 0; i < store.size(); ++i) {
    ASSERT_LE(qs.LowerBound2(enc, i), ExactSquared(store, i, target)) << i;
  }
  // And the cascade still answers exactly.
  ExpectIdentical(store.CascadeKnn(target, 5), store.ExactKnn(target, 5),
                  "far target");
}

TEST(QuantizedStoreTest, AdversarialScaleBlockStaysAdmissible) {
  // Worst case for per-block scaling: one huge outlier value makes its
  // block's scale enormous, so every other value in that block quantizes to
  // code 0 and the bound must survive on the residual correction alone.
  const size_t dim = 48;
  EmbeddingStore store(6, dim);
  Rng rng(6037);
  for (size_t i = 0; i < store.size(); ++i) {
    std::span<double> row = store.MutableRow(i);
    for (size_t j = 0; j < dim; ++j) row[j] = rng.NextDouble() - 0.5;
  }
  store.MutableRow(3)[17] = 1e6;  // the outlier poisons block 1's scale
  store.BuildQuantized();
  const QuantizedStore& qs = store.quantized();
  Rng trng(6043);
  for (int q = 0; q < 8; ++q) {
    std::vector<double> target(dim);
    for (double& v : target) v = trng.NextDouble() - 0.5;
    if (q == 7) target[17] = 1e6;  // meet the outlier in its own block
    const QuantizedStore::EncodedQuery enc = qs.EncodeQuery(target);
    for (size_t i = 0; i < store.size(); ++i) {
      ASSERT_LE(qs.LowerBound2(enc, i), ExactSquared(store, i, target))
          << "q=" << q << " row=" << i;
    }
    ExpectIdentical(store.CascadeKnn(target, 3), store.ExactKnn(target, 3),
                    "adversarial q=" + std::to_string(q));
  }
}

TEST(QuantizedStoreTest, BatchLowerBoundsShardedIsBitIdenticalToSerial) {
  Rng rng(6047);
  Palette palette = Palette::Uniform(32, &rng);
  QuadraticFormDistance qfd = *QuadraticFormDistance::Create(palette);
  EmbeddingStore store =
      *EmbeddingStore::Build(qfd, RandomDatabase(&rng, 203, 32));
  const QuantizedStore& qs = store.quantized();
  const QuantizedStore::EncodedQuery enc =
      qs.EncodeQuery(qfd.Embed(RandomHistogram(&rng, 32)));
  std::vector<double> serial(qs.size());
  qs.BatchLowerBounds2(enc, serial);
  ThreadPool pool(4);
  for (size_t shards : ShardCounts()) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      std::vector<double> sharded(qs.size(), -1.0);
      qs.BatchLowerBounds2(enc, sharded, p, shards);
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(sharded[i], serial[i])
            << "shards=" << shards << " pool=" << (p != nullptr) << " i=" << i;
      }
    }
  }
}

class QuantizedCascadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(6053);
    palette_ = Palette::Uniform(64, &rng);
    qfd_ = *QuadraticFormDistance::Create(palette_);
    db_ = RandomDatabase(&rng, 500, 64);
    store_ = *EmbeddingStore::Build(qfd_, db_);
    for (int q = 0; q < 5; ++q) {
      targets_.push_back(qfd_.Embed(RandomHistogram(&rng, 64)));
    }
  }

  Palette palette_;
  QuadraticFormDistance qfd_;
  std::vector<Histogram> db_;
  EmbeddingStore store_;
  std::vector<std::vector<double>> targets_;
};

TEST_F(QuantizedCascadeTest, GoldenBitIdenticalAcrossShardCountsAndOptions) {
  ThreadPool pool(4);
  for (const std::vector<double>& target : targets_) {
    const std::vector<std::pair<size_t, double>> exact =
        store_.ExactKnn(target, 10);
    for (CascadeOptions options :
         {CascadeOptions{1, 1}, CascadeOptions{8, 16}, CascadeOptions{64, 16}}) {
      ASSERT_TRUE(options.use_quantized);  // the tier defaults on
      for (size_t shards : ShardCounts()) {
        for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
          CascadeStats stats;
          ExpectIdentical(
              store_.CascadeKnn(target, 10, options, &stats, p, shards), exact,
              "int8 cascade shards=" + std::to_string(shards));
          EXPECT_EQ(stats.quantized_bound_computations, store_.size());
          EXPECT_EQ(stats.bytes_scanned_quantized,
                    store_.size() * store_.quantized().row_bytes());
        }
      }
    }
  }
}

TEST_F(QuantizedCascadeTest, DuplicateTieStormKeepsIndexOrder) {
  // 5 distinct rows x 21 copies: every distance ties 21 ways, across shard
  // borders, and the quantized bounds tie too. Rank order must still be
  // ascending-index, identical to the serial exact scan.
  Rng rng(6067);
  std::vector<Histogram> distinct = RandomDatabase(&rng, 5, 64);
  std::vector<Histogram> db;
  for (int copy = 0; copy < 21; ++copy) {
    for (const Histogram& h : distinct) db.push_back(h);
  }
  EmbeddingStore store = *EmbeddingStore::Build(qfd_, db);
  ASSERT_TRUE(store.has_quantized());
  std::vector<double> target = qfd_.Embed(distinct[2]);
  const std::vector<std::pair<size_t, double>> exact =
      store.ExactKnn(target, 23);
  for (size_t i = 1; i < exact.size(); ++i) {
    if (exact[i].second == exact[i - 1].second) {
      EXPECT_LT(exact[i - 1].first, exact[i].first);
    }
  }
  ThreadPool pool(4);
  for (size_t shards : ShardCounts()) {
    ExpectIdentical(store.CascadeKnn(target, 23, {}, nullptr, &pool, shards),
                    exact, "tie storm shards=" + std::to_string(shards));
  }
}

TEST_F(QuantizedCascadeTest, QuantizedOnAndOffReturnTheSameBits) {
  for (const std::vector<double>& target : targets_) {
    CascadeOptions off;
    off.use_quantized = false;
    ExpectIdentical(store_.CascadeKnn(target, 10),
                    store_.CascadeKnn(target, 10, off), "on == off");
  }
}

TEST_F(QuantizedCascadeTest, TierSkipsFarMoreRowsThanTheFloatPrefixAdmits) {
  // The tier's reason to exist: on a 500-row store the int8 full-dimension
  // bound should dismiss the overwhelming majority of rows before any
  // float work happens.
  CascadeStats stats;
  for (const std::vector<double>& target : targets_) {
    store_.CascadeKnn(target, 10, {}, &stats);
  }
  EXPECT_EQ(stats.quantized_bound_computations,
            targets_.size() * store_.size());
  EXPECT_LT(stats.bound_computations,
            targets_.size() * store_.size() / 4);
}

TEST_F(QuantizedCascadeTest, EmptyAndEdgeCasesStayExact) {
  EXPECT_TRUE(store_.CascadeKnn(targets_[0], 0).empty());
  ExpectIdentical(store_.CascadeKnn(targets_[0], db_.size() + 10),
                  store_.ExactKnn(targets_[0], db_.size()), "k > n");
  // Self-query through the quantized tier: distance exactly 0 at rank 0.
  std::vector<double> self(store_.Row(7).begin(), store_.Row(7).end());
  const auto got = store_.CascadeKnn(self, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 7u);
  EXPECT_EQ(got[0].second, 0.0);
}

}  // namespace
}  // namespace fuzzydb
