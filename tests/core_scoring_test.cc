#include "core/scoring.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fuzzydb {
namespace {

TEST(ScoringValuesTest, MinMaxMeans) {
  std::vector<double> x{0.2, 0.8, 0.5};
  EXPECT_DOUBLE_EQ(MinRule()->Apply(x), 0.2);
  EXPECT_DOUBLE_EQ(MaxRule()->Apply(x), 0.8);
  EXPECT_DOUBLE_EQ(ArithmeticMeanRule()->Apply(x), 0.5);
  EXPECT_NEAR(GeometricMeanRule()->Apply(x), std::cbrt(0.2 * 0.8 * 0.5),
              1e-12);
  EXPECT_NEAR(HarmonicMeanRule()->Apply(x),
              3.0 / (1.0 / 0.2 + 1.0 / 0.8 + 1.0 / 0.5), 1e-12);
  EXPECT_DOUBLE_EQ(MedianRule()->Apply(x), 0.5);
}

TEST(ScoringValuesTest, MedianUsesLowerMedianOnEvenArity) {
  std::vector<double> x{0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(MedianRule()->Apply(x), 0.2);
}

TEST(ScoringValuesTest, HarmonicMeanIsZeroWhenAnyScoreIsZero) {
  std::vector<double> x{0.0, 0.8};
  EXPECT_DOUBLE_EQ(HarmonicMeanRule()->Apply(x), 0.0);
}

TEST(ScoringValuesTest, IteratedTNormMatchesPairwiseIteration) {
  ScoringRulePtr prod = TNormRule(TNormKind::kProduct);
  std::vector<double> x{0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(prod->Apply(x), 0.125);
  ScoringRulePtr luk = TNormRule(TNormKind::kLukasiewicz);
  std::vector<double> y{0.9, 0.8, 0.7};
  // ((0.9 + 0.8 - 1) + 0.7 - 1) = 0.4.
  EXPECT_NEAR(luk->Apply(y), 0.4, 1e-12);
}

TEST(ScoringValuesTest, SingleArgumentIsIdentityForAllRules) {
  std::vector<double> x{0.37};
  for (const ScoringRulePtr& rule :
       {MinRule(), MaxRule(), TNormRule(TNormKind::kProduct),
        TCoNormRule(TCoNormKind::kProbSum), ArithmeticMeanRule(),
        GeometricMeanRule(), HarmonicMeanRule(), MedianRule()}) {
    EXPECT_DOUBLE_EQ(rule->Apply(x), 0.37) << rule->name();
  }
}

struct RuleCase {
  ScoringRulePtr rule;
  bool monotone;
  bool strict;
};

class RulePropertiesTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(RulePropertiesTest, DeclaredPropertiesMatchEmpiricalChecks) {
  const RuleCase& c = GetParam();
  EXPECT_EQ(c.rule->monotone(), c.monotone) << c.rule->name();
  EXPECT_EQ(c.rule->strict(), c.strict) << c.rule->name();
  for (size_t m : {1u, 2u, 4u}) {
    Rng rng(61 + m);
    if (c.monotone) {
      EXPECT_TRUE(CheckMonotoneEmpirically(*c.rule, m, 500, &rng))
          << c.rule->name() << " arity " << m;
    }
  }
  // Strictness is an arity-sensitive property (every rule is the identity at
  // arity 1, and the lower median of two is min); the declared flag is the
  // any-arity guarantee, so test it at arity 4.
  Rng rng2(67);
  EXPECT_EQ(CheckStrictEmpirically(*c.rule, 4, 500, &rng2), c.strict)
      << c.rule->name();
  Rng rng3(71);
  EXPECT_TRUE(CheckStrictEmpirically(*c.rule, 1, 200, &rng3))
      << c.rule->name() << " at arity 1";
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RulePropertiesTest,
    ::testing::Values(
        RuleCase{MinRule(), true, true},
        RuleCase{MaxRule(), true, false},
        RuleCase{TNormRule(TNormKind::kProduct), true, true},
        RuleCase{TNormRule(TNormKind::kLukasiewicz), true, true},
        RuleCase{TNormRule(TNormKind::kHamacher), true, true},
        RuleCase{TNormRule(TNormKind::kEinstein), true, true},
        RuleCase{TCoNormRule(TCoNormKind::kProbSum), true, false},
        RuleCase{ArithmeticMeanRule(), true, true},
        RuleCase{GeometricMeanRule(), true, true},
        RuleCase{HarmonicMeanRule(), true, true},
        RuleCase{MedianRule(), true, false}),
    [](const auto& info) {
      std::string name = info.param.rule->name();
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(CheckersTest, RefuteNonMonotoneRule) {
  ScoringRulePtr bad = UserDefinedRule(
      "antitone",
      [](std::span<const double> s) { return 1.0 - s[0]; }, true, false);
  Rng rng(71);
  EXPECT_FALSE(CheckMonotoneEmpirically(*bad, 2, 200, &rng));
}

TEST(CheckersTest, RefuteNonStrictRule) {
  // max claims strictness -> refuted because (1, 0.3) scores 1.
  Rng rng(73);
  EXPECT_FALSE(CheckStrictEmpirically(*MaxRule(), 3, 500, &rng));
}

TEST(CheckersTest, UserDefinedRuleReportsClaims) {
  ScoringRulePtr custom = UserDefinedRule(
      "avg2",
      [](std::span<const double> s) {
        double t = 0.0;
        for (double v : s) t += v;
        return t / static_cast<double>(s.size());
      },
      true, true);
  EXPECT_EQ(custom->name(), "avg2");
  EXPECT_TRUE(custom->monotone());
  EXPECT_TRUE(custom->strict());
  std::vector<double> x{0.4, 0.6};
  EXPECT_DOUBLE_EQ(custom->Apply(x), 0.5);
}

TEST(PaperClaimTest, ArithmeticMeanIsNotATNormButIsMonotoneAndStrict) {
  // Paper §3: "the arithmetic mean does not conserve the standard
  // propositional semantics, since with arguments 0 and 1 it takes the
  // value 1/2, rather than 0. These functions do satisfy strictness and
  // monotonicity."
  std::vector<double> x{0.0, 1.0};
  EXPECT_DOUBLE_EQ(ArithmeticMeanRule()->Apply(x), 0.5);
  Rng rng(79);
  EXPECT_TRUE(CheckMonotoneEmpirically(*ArithmeticMeanRule(), 2, 500, &rng));
  EXPECT_TRUE(CheckStrictEmpirically(*ArithmeticMeanRule(), 2, 500, &rng));
}

}  // namespace
}  // namespace fuzzydb
