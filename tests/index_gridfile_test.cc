#include "index/gridfile.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fuzzydb {
namespace {

std::vector<double> RandomPoint(Rng* rng, size_t dim) {
  std::vector<double> p(dim);
  for (double& c : p) c = rng->NextDouble();
  return p;
}

TEST(GridFileTest, InsertValidatesInput) {
  GridFile grid(2);
  EXPECT_FALSE(grid.Insert(1, std::vector<double>{0.5}).ok());
  EXPECT_FALSE(grid.Insert(1, std::vector<double>{0.5, -0.1}).ok());
  EXPECT_TRUE(grid.Insert(1, std::vector<double>{0.5, 0.5}).ok());
  EXPECT_TRUE(grid.Insert(2, std::vector<double>{1.0, 0.0}).ok());  // border
  EXPECT_EQ(grid.size(), 2u);
}

class GridKnnTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GridKnnTest, MatchesLinearScanExactly) {
  const size_t dim = GetParam();
  Rng rng(547 + dim);
  GridFile grid(dim, 4);
  LinearScanIndex scan(dim);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p = RandomPoint(&rng, dim);
    ASSERT_TRUE(grid.Insert(i, p).ok());
    ASSERT_TRUE(scan.Insert(i, p).ok());
  }
  for (int q = 0; q < 10; ++q) {
    std::vector<double> query = RandomPoint(&rng, dim);
    for (size_t k : {1u, 7u}) {
      Result<std::vector<KnnNeighbor>> a = grid.Knn(query, k, nullptr);
      Result<std::vector<KnnNeighbor>> b = scan.Knn(query, k, nullptr);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->size(), b->size());
      for (size_t i = 0; i < a->size(); ++i) {
        EXPECT_EQ((*a)[i].id, (*b)[i].id) << "dim " << dim << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, GridKnnTest, ::testing::Values(2, 3, 6, 12),
                         [](const auto& info) {
                           std::string name = "dim";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(GridFileTest, DirectoryGrowsExponentiallyWithDimension) {
  // The paper's point (§2.1): a dense grid directory is buckets^dim.
  EXPECT_DOUBLE_EQ(GridFile(2, 4).VirtualDirectorySize(), 16.0);
  EXPECT_DOUBLE_EQ(GridFile(10, 4).VirtualDirectorySize(), 1048576.0);
  EXPECT_GT(GridFile(64, 4).VirtualDirectorySize(), 1e38);
}

TEST(GridFileTest, HighDimensionDegradesToOneCellPerPoint) {
  Rng rng(557);
  const size_t n = 400;
  GridFile low(2, 4), high(24, 4);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(low.Insert(i, RandomPoint(&rng, 2)).ok());
    ASSERT_TRUE(high.Insert(i, RandomPoint(&rng, 24)).ok());
  }
  // Low dimension: many points share cells (16 cells for 400 points).
  EXPECT_LE(low.OccupiedCells(), 16u);
  // High dimension: nearly every point is alone in its cell.
  EXPECT_GT(high.OccupiedCells(), n * 9 / 10);
}

TEST(GridFileTest, LowDimensionKnnOpensFewBuckets) {
  Rng rng(563);
  GridFile grid(2, 8);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(grid.Insert(i, RandomPoint(&rng, 2)).ok());
  }
  KnnStats stats;
  ASSERT_TRUE(grid.Knn(std::vector<double>{0.5, 0.5}, 5, &stats).ok());
  // Should examine far fewer points than the full 2000.
  EXPECT_LT(stats.distance_computations, 500u);
}

}  // namespace
}  // namespace fuzzydb
