// Tests for the incremental R-tree nearest iterator and the GEMINI
// filter-and-refine pipeline (paper §2.1's "multidimensional index on short
// color vectors").

#include "image/indexed_search.h"

#include <gtest/gtest.h>

namespace fuzzydb {
namespace {

TEST(NearestIteratorTest, StreamsInAscendingDistanceOrder) {
  Rng rng(961);
  RTree tree(3);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p{rng.NextDouble(), rng.NextDouble(),
                          rng.NextDouble()};
    ASSERT_TRUE(tree.Insert(i, p).ok());
  }
  std::vector<double> query{0.5, 0.5, 0.5};
  RTree::NearestIterator it(&tree, query);
  double prev = -1.0;
  size_t count = 0;
  while (auto next = it.Next()) {
    EXPECT_GE(next->distance, prev - 1e-12);
    prev = next->distance;
    ++count;
  }
  EXPECT_EQ(count, 500u);
  EXPECT_FALSE(it.Next().has_value());  // stays exhausted
}

TEST(NearestIteratorTest, PrefixMatchesBatchKnn) {
  Rng rng(967);
  RTree tree(2);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> p{rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(tree.Insert(i, p).ok());
  }
  std::vector<double> query{0.3, 0.7};
  Result<std::vector<KnnNeighbor>> batch = tree.Knn(query, 20, nullptr);
  ASSERT_TRUE(batch.ok());
  RTree::NearestIterator it(&tree, query);
  for (size_t i = 0; i < 20; ++i) {
    std::optional<KnnNeighbor> next = it.Next();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->id, (*batch)[i].id) << "rank " << i;
    EXPECT_NEAR(next->distance, (*batch)[i].distance, 1e-12);
  }
}

TEST(NearestIteratorTest, LazyIterationTouchesFewNodes) {
  Rng rng(971);
  RTree tree(2);
  for (int i = 0; i < 5000; ++i) {
    std::vector<double> p{rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(tree.Insert(i, p).ok());
  }
  RTree::NearestIterator it(&tree, std::vector<double>{0.5, 0.5});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(it.Next().has_value());
  // First few neighbours must not require most of the tree.
  EXPECT_LT(it.stats().distance_computations, 1000u);
}

class GeminiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(977);
    palette_ = Palette::Uniform(64, &rng);
    qfd_ = *QuadraticFormDistance::Create(palette_);
    for (int i = 0; i < 600; ++i) {
      db_.push_back(RandomHistogram(&rng, 64));
    }
  }

  Palette palette_;
  QuadraticFormDistance qfd_;
  std::vector<Histogram> db_;
};

TEST_F(GeminiTest, BuildValidates) {
  EigenFilter filter = *EigenFilter::Create(qfd_, 3);
  EXPECT_FALSE(GeminiIndex::Build(nullptr, filter, &db_).ok());
  EXPECT_FALSE(GeminiIndex::Build(&qfd_, filter, nullptr).ok());
  std::vector<Histogram> empty;
  EXPECT_FALSE(GeminiIndex::Build(&qfd_, filter, &empty).ok());
}

TEST_F(GeminiTest, KnnMatchesExactSearch) {
  EigenFilter filter = *EigenFilter::Create(qfd_, 3);
  Result<GeminiIndex> index = GeminiIndex::Build(&qfd_, filter, &db_);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  Rng rng(983);
  for (int q = 0; q < 8; ++q) {
    Histogram target = RandomHistogram(&rng, 64);
    FilteredSearchStats stats;
    Result<std::vector<std::pair<size_t, double>>> got =
        index->Knn(target, 10, &stats);
    ASSERT_TRUE(got.ok());
    std::vector<std::pair<size_t, double>> expected =
        ExactKnn(qfd_, db_, target, 10);
    ASSERT_EQ(got->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*got)[i].first, expected[i].first) << "rank " << i;
      // GEMINI refines in embedded space; ExactKnn evaluates the quadratic
      // form — the two agree up to eigensolver roundoff.
      EXPECT_NEAR((*got)[i].second, expected[i].second, 1e-9);
    }
    // Refinement must touch well under the whole database.
    EXPECT_LT(stats.full_distance_computations, db_.size() / 2);
    // Every candidate that entered refinement is accounted for: the pruned
    // ones (abandoned mid-row) used to vanish from the cost tables.
    EXPECT_GE(stats.partial_refinements, stats.full_distance_computations);
    EXPECT_LE(stats.partial_refinements, stats.bound_computations);
  }
  EXPECT_FALSE(index->Knn(db_[0], 0).ok());
}

TEST_F(GeminiTest, KLargerThanDatabaseClamps) {
  EigenFilter filter = *EigenFilter::Create(qfd_, 2);
  Result<GeminiIndex> index = GeminiIndex::Build(&qfd_, filter, &db_);
  ASSERT_TRUE(index.ok());
  Result<std::vector<std::pair<size_t, double>>> all =
      index->Knn(db_[0], 10000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), db_.size());
  // Self-query ranks itself first with distance ~0.
  EXPECT_EQ((*all)[0].first, 0u);
  EXPECT_NEAR((*all)[0].second, 0.0, 1e-9);
}

TEST_F(GeminiTest, AgreesWithFilteredKnnAndDoesLessSummaryWork) {
  EigenFilter filter = *EigenFilter::Create(qfd_, 3);
  Result<GeminiIndex> index = GeminiIndex::Build(&qfd_, filter, &db_);
  ASSERT_TRUE(index.ok());
  Rng rng(991);
  Histogram target = RandomHistogram(&rng, 64);
  FilteredSearchStats flat_stats, gemini_stats;
  auto flat = FilteredKnn(qfd_, filter, db_, target, 10, &flat_stats);
  auto via_index = index->Knn(target, 10, &gemini_stats);
  ASSERT_TRUE(flat.ok() && via_index.ok());
  for (size_t i = 0; i < flat->size(); ++i) {
    EXPECT_EQ((*flat)[i].first, (*via_index)[i].first);
  }
  // The flat filter projects every database object per query; the index
  // visits only part of the summary space.
  EXPECT_EQ(flat_stats.bound_computations, db_.size());
  EXPECT_LT(gemini_stats.bound_computations, db_.size());
  EXPECT_GE(flat_stats.partial_refinements,
            flat_stats.full_distance_computations);
  EXPECT_GE(gemini_stats.partial_refinements,
            gemini_stats.full_distance_computations);
}

}  // namespace
}  // namespace fuzzydb
