#include "index/zorder.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fuzzydb {
namespace {

std::vector<double> RandomPoint(Rng* rng, size_t dim) {
  std::vector<double> p(dim);
  for (double& c : p) c = rng->NextDouble();
  return p;
}

TEST(MortonTest, EncodeDecodeRoundTrip) {
  Rng rng(569);
  for (int trial = 0; trial < 500; ++trial) {
    size_t dim = 1 + rng.NextBounded(10);
    unsigned bits = 1 + static_cast<unsigned>(rng.NextBounded(
                            std::min<size_t>(5, 60 / dim)));
    std::vector<uint32_t> coords(dim);
    for (uint32_t& c : coords) {
      c = static_cast<uint32_t>(rng.NextBounded(1u << bits));
    }
    uint64_t code = MortonEncode(coords, bits);
    EXPECT_EQ(MortonDecode(code, dim, bits), coords);
  }
}

TEST(MortonTest, Known2DValues) {
  // Classic 2-d Morton: (x=1, y=0) -> 1, (x=0, y=1) -> 2, (x=1, y=1) -> 3.
  std::vector<uint32_t> p10{1, 0}, p01{0, 1}, p11{1, 1};
  EXPECT_EQ(MortonEncode(p10, 1), 1u);
  EXPECT_EQ(MortonEncode(p01, 1), 2u);
  EXPECT_EQ(MortonEncode(p11, 1), 3u);
}

TEST(MortonTest, PreservesLocalityWithinCells) {
  // Two coords identical in high bits share a z-prefix: codes of points in
  // the same half-space differ in lower interleaved bits only.
  std::vector<uint32_t> a{0, 0}, b{1, 1}, c{2, 2};
  EXPECT_LT(MortonEncode(a, 2), MortonEncode(b, 2));
  EXPECT_LT(MortonEncode(b, 2), MortonEncode(c, 2));
}

TEST(LinearQuadtreeTest, AutoPicksFeasibleBits) {
  EXPECT_EQ(LinearQuadtree(2).bits_per_dim(), 4u);
  EXPECT_EQ(LinearQuadtree(20).bits_per_dim(), 3u);
  EXPECT_EQ(LinearQuadtree(32).bits_per_dim(), 1u);
}

TEST(LinearQuadtreeTest, InsertValidates) {
  LinearQuadtree qt(2);
  EXPECT_FALSE(qt.Insert(1, std::vector<double>{0.5}).ok());
  EXPECT_TRUE(qt.Insert(1, std::vector<double>{0.5, 1.0}).ok());
  EXPECT_EQ(qt.size(), 1u);
}

class ZKnnTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ZKnnTest, MatchesLinearScanExactly) {
  const size_t dim = GetParam();
  Rng rng(571 + dim);
  LinearQuadtree qt(dim);
  LinearScanIndex scan(dim);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p = RandomPoint(&rng, dim);
    ASSERT_TRUE(qt.Insert(i, p).ok());
    ASSERT_TRUE(scan.Insert(i, p).ok());
  }
  for (int q = 0; q < 10; ++q) {
    std::vector<double> query = RandomPoint(&rng, dim);
    for (size_t k : {1u, 9u}) {
      Result<std::vector<KnnNeighbor>> a = qt.Knn(query, k, nullptr);
      Result<std::vector<KnnNeighbor>> b = scan.Knn(query, k, nullptr);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->size(), b->size());
      for (size_t i = 0; i < a->size(); ++i) {
        EXPECT_EQ((*a)[i].id, (*b)[i].id) << "dim " << dim << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ZKnnTest, ::testing::Values(2, 3, 6, 12),
                         [](const auto& info) {
                           std::string name = "dim";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(LinearQuadtreeTest, CellOccupancyDegradesWithDimension) {
  Rng rng(577);
  const size_t n = 400;
  LinearQuadtree low(2), high(24);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(low.Insert(i, RandomPoint(&rng, 2)).ok());
    ASSERT_TRUE(high.Insert(i, RandomPoint(&rng, 24)).ok());
  }
  EXPECT_LE(low.OccupiedCells(), 256u);       // capped by the 16x16 grid
  EXPECT_GT(high.OccupiedCells(), n * 9 / 10);  // nearly private cells
}

}  // namespace
}  // namespace fuzzydb
