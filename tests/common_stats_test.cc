#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fuzzydb {
namespace {

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(StdDev(one), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({5.0}, 73), 5.0);
}

TEST(FitLinearTest, ExactLine) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  Result<LinearFit> fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r2, 1.0, 1e-12);
}

TEST(FitLinearTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(FitLinear(std::vector<double>{1.0},
                         std::vector<double>{2.0}).ok());
  EXPECT_FALSE(FitLinear(std::vector<double>{1.0, 2.0},
                         std::vector<double>{2.0}).ok());
  EXPECT_FALSE(FitLinear(std::vector<double>{3.0, 3.0, 3.0},
                         std::vector<double>{1.0, 2.0, 3.0}).ok());
}

TEST(FitLinearTest, ConstantYHasZeroSlope) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  std::vector<double> ys{4.0, 4.0, 4.0};
  Result<LinearFit> fit = FitLinear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.0, 1e-12);
  EXPECT_NEAR(fit->r2, 1.0, 1e-12);
}

TEST(FitPowerLawTest, RecoversExponent) {
  // y = 3 * x^1.5
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.5));
  }
  Result<LinearFit> fit = FitPowerLaw(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 1.5, 1e-10);
  EXPECT_NEAR(std::exp(fit->intercept), 3.0, 1e-9);
}

TEST(FitPowerLawTest, RejectsNonPositive) {
  EXPECT_FALSE(FitPowerLaw(std::vector<double>{0.0, 1.0},
                           std::vector<double>{1.0, 2.0}).ok());
  EXPECT_FALSE(FitPowerLaw(std::vector<double>{1.0, 2.0},
                           std::vector<double>{1.0, -2.0}).ok());
}

}  // namespace
}  // namespace fuzzydb
