// Tests for the Garlic complex-object machinery (paper §4.2):
// Advertisements with AdPhoto subobjects, including shared components.

#include "catalog/subobject.h"

#include <gtest/gtest.h>

#include "middleware/fagin.h"
#include "middleware/naive.h"
#include "middleware/vector_source.h"

namespace fuzzydb {
namespace {

TEST(SubobjectMappingTest, ManyToManyRelations) {
  SubobjectMapping map;
  // Ad 1 has photos 101, 102; ad 2 shares photo 102 and adds 103.
  ASSERT_TRUE(map.Add(1, 101).ok());
  ASSERT_TRUE(map.Add(1, 102).ok());
  ASSERT_TRUE(map.Add(2, 102).ok());
  ASSERT_TRUE(map.Add(2, 103).ok());
  EXPECT_EQ(map.num_pairs(), 4u);
  EXPECT_EQ(map.ComponentsOf(1), (std::vector<ObjectId>{101, 102}));
  EXPECT_EQ(map.ParentsOf(102), (std::vector<ObjectId>{1, 2}));
  EXPECT_TRUE(map.ComponentsOf(99).empty());
  EXPECT_TRUE(map.ParentsOf(99).empty());
  EXPECT_EQ(map.Add(1, 101).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(map.parents(), (std::vector<ObjectId>{1, 2}));
}

class SubobjectSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // AdPhoto redness grades.
    Result<VectorSource> photos = VectorSource::Create(
        {{101, 0.9}, {102, 0.4}, {103, 0.7}, {104, 0.2}}, "AdPhoto~red");
    ASSERT_TRUE(photos.ok());
    photos_ = std::make_unique<VectorSource>(std::move(*photos));
    // Ad 1: photos 101, 102. Ad 2: 102 (shared), 103. Ad 3: 104 only.
    // Ad 4: a photo the subsystem does not know.
    ASSERT_TRUE(ads_.Add(1, 101).ok());
    ASSERT_TRUE(ads_.Add(1, 102).ok());
    ASSERT_TRUE(ads_.Add(2, 102).ok());
    ASSERT_TRUE(ads_.Add(2, 103).ok());
    ASSERT_TRUE(ads_.Add(3, 104).ok());
    ASSERT_TRUE(ads_.Add(4, 999).ok());
  }

  std::unique_ptr<VectorSource> photos_;
  SubobjectMapping ads_;
};

TEST_F(SubobjectSourceTest, MaxCombinerLiftsGrades) {
  Result<SubobjectSource> ads = SubobjectSource::Create(
      photos_.get(), &ads_, MaxRule(), "Advertisement~red");
  ASSERT_TRUE(ads.ok());
  EXPECT_EQ(ads->Size(), 4u);
  EXPECT_DOUBLE_EQ(ads->RandomAccess(1), 0.9);  // best of 0.9, 0.4
  EXPECT_DOUBLE_EQ(ads->RandomAccess(2), 0.7);  // best of 0.4, 0.7
  EXPECT_DOUBLE_EQ(ads->RandomAccess(3), 0.2);
  EXPECT_DOUBLE_EQ(ads->RandomAccess(4), 0.0);  // unknown photo -> 0
  EXPECT_DOUBLE_EQ(ads->RandomAccess(42), 0.0);

  std::optional<GradedObject> top = ads->NextSorted();
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->id, 1u);
  EXPECT_DOUBLE_EQ(top->grade, 0.9);
}

TEST_F(SubobjectSourceTest, SharedComponentCountsForBothParents) {
  // Photo 102 belongs to ads 1 and 2; bumping a query where it is the best
  // photo must raise both parents.
  Result<VectorSource> photos = VectorSource::Create(
      {{101, 0.1}, {102, 0.8}, {103, 0.2}, {104, 0.3}}, "AdPhoto~blue");
  ASSERT_TRUE(photos.ok());
  Result<SubobjectSource> ads =
      SubobjectSource::Create(&*photos, &ads_, MaxRule());
  ASSERT_TRUE(ads.ok());
  EXPECT_DOUBLE_EQ(ads->RandomAccess(1), 0.8);
  EXPECT_DOUBLE_EQ(ads->RandomAccess(2), 0.8);
}

TEST_F(SubobjectSourceTest, AlternativeCombiners) {
  // "Advertisement whose photos are ALL red" = min combiner.
  Result<SubobjectSource> all_red =
      SubobjectSource::Create(photos_.get(), &ads_, MinRule());
  ASSERT_TRUE(all_red.ok());
  EXPECT_DOUBLE_EQ(all_red->RandomAccess(1), 0.4);
  EXPECT_DOUBLE_EQ(all_red->RandomAccess(2), 0.4);
  // Average combiner.
  Result<SubobjectSource> avg =
      SubobjectSource::Create(photos_.get(), &ads_, ArithmeticMeanRule());
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->RandomAccess(1), 0.65);
}

TEST_F(SubobjectSourceTest, ComposesWithTopKAlgorithms) {
  // (Advertisement photo ~ red) AND (Advertisement budget-grade) — the
  // lifted source is a plain GradedSource, so A0 runs unchanged on top.
  Result<SubobjectSource> ads =
      SubobjectSource::Create(photos_.get(), &ads_, MaxRule());
  ASSERT_TRUE(ads.ok());
  Result<VectorSource> budget = VectorSource::Create(
      {{1, 0.3}, {2, 0.9}, {3, 0.8}, {4, 0.5}}, "Budget");
  ASSERT_TRUE(budget.ok());
  std::vector<GradedSource*> sources{&*ads, &*budget};
  ScoringRulePtr min = MinRule();
  Result<GradedSet> truth = NaiveAllGrades(sources, *min);
  ASSERT_TRUE(truth.ok());
  Result<TopKResult> top = FaginTopK(sources, *min, 2);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(IsValidTopK(top->items, *truth, 2));
  // min(ad1)=min(0.9,0.3)=0.3; ad2=0.7∧0.9=0.7; ad3=0.2; ad4=0.0.
  EXPECT_EQ(top->items[0].id, 2u);
  EXPECT_DOUBLE_EQ(top->items[0].grade, 0.7);
}

TEST_F(SubobjectSourceTest, RejectsBadArguments) {
  EXPECT_FALSE(SubobjectSource::Create(nullptr, &ads_).ok());
  EXPECT_FALSE(SubobjectSource::Create(photos_.get(), nullptr).ok());
  EXPECT_FALSE(
      SubobjectSource::Create(photos_.get(), &ads_, nullptr).ok());
}

}  // namespace
}  // namespace fuzzydb
