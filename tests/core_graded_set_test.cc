#include "core/graded_set.h"

#include <gtest/gtest.h>

namespace fuzzydb {
namespace {

TEST(GradedObjectTest, OrderingIsGradeDescThenIdAsc) {
  EXPECT_TRUE(GradeDescending({1, 0.9}, {2, 0.5}));
  EXPECT_FALSE(GradeDescending({2, 0.5}, {1, 0.9}));
  EXPECT_TRUE(GradeDescending({1, 0.5}, {2, 0.5}));  // tie -> smaller id
  EXPECT_FALSE(GradeDescending({2, 0.5}, {1, 0.5}));
}

TEST(GradedSetTest, InsertAndLookup) {
  GradedSet s;
  ASSERT_TRUE(s.Insert(10, 0.7).ok());
  ASSERT_TRUE(s.Insert(20, 0.2).ok());
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_FALSE(s.Contains(30));
  EXPECT_DOUBLE_EQ(*s.GradeOf(10), 0.7);
  EXPECT_FALSE(s.GradeOf(30).has_value());
}

TEST(GradedSetTest, InsertOverwritesExistingGrade) {
  GradedSet s;
  ASSERT_TRUE(s.Insert(10, 0.7).ok());
  ASSERT_TRUE(s.Insert(10, 0.3).ok());
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(*s.GradeOf(10), 0.3);
}

TEST(GradedSetTest, RejectsOutOfRangeGrades) {
  GradedSet s;
  EXPECT_FALSE(s.Insert(1, -0.1).ok());
  EXPECT_FALSE(s.Insert(1, 1.1).ok());
  EXPECT_TRUE(s.Insert(1, 0.0).ok());
  EXPECT_TRUE(s.Insert(2, 1.0).ok());
}

TEST(GradedSetTest, FromPairsRejectsDuplicates) {
  Result<GradedSet> r = GradedSet::FromPairs({{1, 0.5}, {1, 0.6}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST(GradedSetTest, SortedAndTopK) {
  GradedSet s;
  ASSERT_TRUE(s.Insert(1, 0.2).ok());
  ASSERT_TRUE(s.Insert(2, 0.9).ok());
  ASSERT_TRUE(s.Insert(3, 0.5).ok());
  ASSERT_TRUE(s.Insert(4, 0.9).ok());
  std::vector<GradedObject> sorted = s.Sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].id, 2u);  // grade tie 0.9: id 2 before 4
  EXPECT_EQ(sorted[1].id, 4u);
  EXPECT_EQ(sorted[2].id, 3u);
  EXPECT_EQ(sorted[3].id, 1u);

  std::vector<GradedObject> top2 = s.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].id, 2u);
  EXPECT_EQ(top2[1].id, 4u);
  EXPECT_EQ(s.TopK(10).size(), 4u);
}

TEST(GradedSetTest, AtLeastFiltersAndSorts) {
  GradedSet s;
  ASSERT_TRUE(s.Insert(1, 0.2).ok());
  ASSERT_TRUE(s.Insert(2, 0.9).ok());
  ASSERT_TRUE(s.Insert(3, 0.5).ok());
  std::vector<GradedObject> hi = s.AtLeast(0.5);
  ASSERT_EQ(hi.size(), 2u);
  EXPECT_EQ(hi[0].id, 2u);
  EXPECT_EQ(hi[1].id, 3u);
}

TEST(GradedSetTest, SupportExcludesZeroGrades) {
  GradedSet s;
  ASSERT_TRUE(s.Insert(5, 0.0).ok());
  ASSERT_TRUE(s.Insert(3, 0.1).ok());
  ASSERT_TRUE(s.Insert(9, 1.0).ok());
  std::vector<ObjectId> support = s.Support();
  EXPECT_EQ(support, (std::vector<ObjectId>{3, 9}));
}

TEST(IsValidTopKTest, AcceptsCorrectAnswer) {
  GradedSet truth;
  ASSERT_TRUE(truth.Insert(1, 0.9).ok());
  ASSERT_TRUE(truth.Insert(2, 0.8).ok());
  ASSERT_TRUE(truth.Insert(3, 0.1).ok());
  std::vector<GradedObject> answer{{1, 0.9}, {2, 0.8}};
  EXPECT_TRUE(IsValidTopK(answer, truth, 2));
}

TEST(IsValidTopKTest, AcceptsEitherTieBreak) {
  GradedSet truth;
  ASSERT_TRUE(truth.Insert(1, 0.9).ok());
  ASSERT_TRUE(truth.Insert(2, 0.5).ok());
  ASSERT_TRUE(truth.Insert(3, 0.5).ok());
  std::vector<GradedObject> a{{1, 0.9}, {2, 0.5}};
  std::vector<GradedObject> b{{1, 0.9}, {3, 0.5}};
  EXPECT_TRUE(IsValidTopK(a, truth, 2));
  EXPECT_TRUE(IsValidTopK(b, truth, 2));
}

TEST(IsValidTopKTest, RejectsWrongSizeWrongGradeAndOmission) {
  GradedSet truth;
  ASSERT_TRUE(truth.Insert(1, 0.9).ok());
  ASSERT_TRUE(truth.Insert(2, 0.8).ok());
  ASSERT_TRUE(truth.Insert(3, 0.1).ok());
  // Wrong size.
  EXPECT_FALSE(IsValidTopK(std::vector<GradedObject>{{1, 0.9}}, truth, 2));
  // Wrong grade.
  EXPECT_FALSE(IsValidTopK(std::vector<GradedObject>{{1, 0.9}, {2, 0.7}},
                           truth, 2));
  // Omits a strictly better object.
  EXPECT_FALSE(IsValidTopK(std::vector<GradedObject>{{1, 0.9}, {3, 0.1}},
                           truth, 2));
  // Duplicate entry.
  EXPECT_FALSE(IsValidTopK(std::vector<GradedObject>{{1, 0.9}, {1, 0.9}},
                           truth, 2));
  // Unknown object.
  EXPECT_FALSE(IsValidTopK(std::vector<GradedObject>{{1, 0.9}, {7, 0.8}},
                           truth, 2));
}

TEST(IsValidTopKTest, KLargerThanTruthRequiresAllObjects) {
  GradedSet truth;
  ASSERT_TRUE(truth.Insert(1, 0.9).ok());
  ASSERT_TRUE(truth.Insert(2, 0.8).ok());
  EXPECT_TRUE(IsValidTopK(std::vector<GradedObject>{{1, 0.9}, {2, 0.8}},
                          truth, 5));
  EXPECT_FALSE(IsValidTopK(std::vector<GradedObject>{{1, 0.9}}, truth, 5));
}

}  // namespace
}  // namespace fuzzydb
