#include "image/color_moments.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fuzzydb {
namespace {

TEST(ColorMomentsTest, ValidatesInput) {
  Palette p = Palette::Uniform(8);
  EXPECT_FALSE(ComputeColorMoments(p, Histogram{0.5, 0.5}).ok());
  EXPECT_FALSE(ComputeColorMoments(p, Histogram(8, 0.2)).ok());  // mass 1.6
}

TEST(ColorMomentsTest, PointMassHasZeroSpread) {
  Palette p = Palette::Uniform(8);
  Histogram h(8, 0.0);
  h[3] = 1.0;
  Result<ColorMoments> m = ComputeColorMoments(p, h);
  ASSERT_TRUE(m.ok());
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(m->mean[c], p.color(3)[c]);
    EXPECT_NEAR(m->stddev[c], 0.0, 1e-12);
    EXPECT_NEAR(m->skewness[c], 0.0, 1e-9);
  }
}

TEST(ColorMomentsTest, MeanMatchesAverageColor) {
  Rng rng(941);
  Palette p = Palette::Uniform(27, &rng);
  for (int i = 0; i < 20; ++i) {
    Histogram h = RandomHistogram(&rng, 27);
    Result<ColorMoments> m = ComputeColorMoments(p, h);
    ASSERT_TRUE(m.ok());
    Rgb avg = AverageColor(p, h);
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(m->mean[c], avg[c], 1e-12);
    }
  }
}

TEST(ColorMomentsTest, SkewnessSignReflectsAsymmetry) {
  // Two-point distribution with most mass at the low end of a channel has
  // positive skew on that channel.
  Palette p = Palette::Uniform(8);
  // Find the colors with min and max red channel.
  size_t lo = 0, hi = 0;
  for (size_t i = 1; i < 8; ++i) {
    if (p.color(i)[0] < p.color(lo)[0]) lo = i;
    if (p.color(i)[0] > p.color(hi)[0]) hi = i;
  }
  Histogram h(8, 0.0);
  h[lo] = 0.9;
  h[hi] = 0.1;
  Result<ColorMoments> m = ComputeColorMoments(p, h);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->skewness[0], 0.0);
}

TEST(ColorMomentDistanceTest, MetricBasicsAndWeights) {
  Rng rng(947);
  Palette p = Palette::Uniform(27, &rng);
  ColorMoments a = *ComputeColorMoments(p, RandomHistogram(&rng, 27));
  ColorMoments b = *ComputeColorMoments(p, RandomHistogram(&rng, 27));
  EXPECT_DOUBLE_EQ(ColorMomentDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(ColorMomentDistance(a, b), ColorMomentDistance(b, a));
  // Zeroing all weights zeroes the distance; scaling weights scales it.
  EXPECT_DOUBLE_EQ(ColorMomentDistance(a, b, {0.0, 0.0, 0.0}), 0.0);
  double base = ColorMomentDistance(a, b);
  EXPECT_NEAR(ColorMomentDistance(a, b, {2.0, 2.0, 2.0}), 2.0 * base, 1e-12);
  EXPECT_DOUBLE_EQ(ColorMomentGradeFromDistance(0.0), 1.0);
}

TEST(ColorMomentsTest, MomentsTrackHistogramSimilarity) {
  // A histogram is closer in moment space to a small perturbation of
  // itself than to an unrelated histogram.
  Rng rng(953);
  Palette p = Palette::Uniform(27, &rng);
  Histogram h = RandomHistogram(&rng, 27);
  Histogram perturbed = h;
  // Move 2% of mass between two bins.
  perturbed[0] = std::max(0.0, perturbed[0] - 0.02);
  perturbed[1] += h[0] - perturbed[0];
  Histogram other = RandomHistogram(&rng, 27);
  ColorMoments mh = *ComputeColorMoments(p, h);
  ColorMoments mp = *ComputeColorMoments(p, perturbed);
  ColorMoments mo = *ComputeColorMoments(p, other);
  EXPECT_LT(ColorMomentDistance(mh, mp), ColorMomentDistance(mh, mo));
}

}  // namespace
}  // namespace fuzzydb
