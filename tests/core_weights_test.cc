// Tests of the Fagin–Wimmers weighting machinery against every property the
// paper states: the formula (5) itself, D1 (equal weights), D2 (zero-weight
// dropping), D3 (continuity), D3' (local linearity), well-definedness under
// ties, and the inheritance of monotonicity and strictness.

#include "core/weights.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace fuzzydb {
namespace {

Weighting W(std::vector<double> theta) {
  Result<Weighting> w = Weighting::Create(std::move(theta));
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return *w;
}

TEST(WeightingTest, CreateValidates) {
  EXPECT_FALSE(Weighting::Create({}).ok());
  EXPECT_FALSE(Weighting::Create({0.5, -0.1, 0.6}).ok());
  EXPECT_FALSE(Weighting::Create({0.5, 0.6}).ok());  // sums to 1.1
  EXPECT_TRUE(Weighting::Create({0.5, 0.5}).ok());
  EXPECT_TRUE(Weighting::Create({1.0}).ok());
}

TEST(WeightingTest, FromSlidersNormalizes) {
  Result<Weighting> w = Weighting::FromSliders({2.0, 1.0, 1.0});
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ((*w)[0], 0.5);
  EXPECT_DOUBLE_EQ((*w)[1], 0.25);
  EXPECT_FALSE(Weighting::FromSliders({0.0, 0.0}).ok());
  EXPECT_FALSE(Weighting::FromSliders({-1.0, 2.0}).ok());
}

TEST(WeightingTest, EqualAndOrdered) {
  Weighting eq = Weighting::Equal(4);
  EXPECT_EQ(eq.size(), 4u);
  EXPECT_TRUE(eq.IsOrdered());
  EXPECT_DOUBLE_EQ(eq[2], 0.25);
  EXPECT_TRUE(W({0.5, 0.3, 0.2}).IsOrdered());
  EXPECT_FALSE(W({0.3, 0.5, 0.2}).IsOrdered());
}

TEST(WeightingTest, MixIsConvexCombination) {
  Weighting a = W({0.8, 0.2});
  Weighting b = W({0.4, 0.6});
  Result<Weighting> mid = a.Mix(b, 0.5);
  ASSERT_TRUE(mid.ok());
  EXPECT_DOUBLE_EQ((*mid)[0], 0.6);
  EXPECT_DOUBLE_EQ((*mid)[1], 0.4);
  EXPECT_FALSE(a.Mix(W({1.0}), 0.5).ok());
  EXPECT_FALSE(a.Mix(b, 1.5).ok());
}

TEST(FaginWimmersTest, AverageRuleGivesWeightedAverage) {
  // For f = avg, the weighted version must be the plain weighted average
  // θ1·x1 + θ2·x2 (the motivating example of paper §5).
  Weighting theta = W({2.0 / 3.0, 1.0 / 3.0});
  Rng rng(83);
  for (int i = 0; i < 500; ++i) {
    double x1 = rng.NextDouble(), x2 = rng.NextDouble();
    double got =
        FaginWimmersScore(*ArithmeticMeanRule(), theta, std::vector{x1, x2});
    EXPECT_NEAR(got, (2.0 * x1 + x2) / 3.0, 1e-12);
  }
}

TEST(FaginWimmersTest, ExplicitFormulaForMin) {
  // Formula (5) with m = 2, ordered weights: (θ1-θ2)·f(x1) + 2θ2·f(x1,x2).
  Weighting theta = W({0.7, 0.3});
  double x1 = 0.5, x2 = 0.9;
  double expected = (0.7 - 0.3) * x1 + 2.0 * 0.3 * std::min(x1, x2);
  EXPECT_NEAR(
      FaginWimmersScore(*MinRule(), theta, std::vector{x1, x2}), expected,
      1e-12);
}

TEST(FaginWimmersTest, ArgumentOrderFollowsWeightsNotPositions) {
  // With weights (0.3, 0.7) the second argument is the most important, so
  // the formula must use prefix f(x2), then f(x2, x1).
  Weighting theta = W({0.3, 0.7});
  double x1 = 0.2, x2 = 0.9;
  double expected = (0.7 - 0.3) * x2 + 2.0 * 0.3 * std::min(x1, x2);
  EXPECT_NEAR(
      FaginWimmersScore(*MinRule(), theta, std::vector{x1, x2}), expected,
      1e-12);
}

TEST(FaginWimmersTest, D1EqualWeightsReduceToUnweighted) {
  Rng rng(89);
  for (size_t m : {1u, 2u, 3u, 5u}) {
    Weighting eq = Weighting::Equal(m);
    for (const ScoringRulePtr& rule :
         {MinRule(), ArithmeticMeanRule(), GeometricMeanRule(), MaxRule()}) {
      for (int i = 0; i < 100; ++i) {
        std::vector<double> x = UniformGrades(&rng, m);
        EXPECT_NEAR(FaginWimmersScore(*rule, eq, x), rule->Apply(x), 1e-12)
            << rule->name() << " m=" << m;
      }
    }
  }
}

TEST(FaginWimmersTest, D2ZeroWeightArgumentCanBeDropped) {
  Rng rng(97);
  Weighting with_zero = W({0.6, 0.4, 0.0});
  Weighting dropped = W({0.6, 0.4});
  for (const ScoringRulePtr& rule : {MinRule(), ArithmeticMeanRule()}) {
    for (int i = 0; i < 200; ++i) {
      double x1 = rng.NextDouble(), x2 = rng.NextDouble(),
             x3 = rng.NextDouble();
      double full =
          FaginWimmersScore(*rule, with_zero, std::vector{x1, x2, x3});
      double partial = FaginWimmersScore(*rule, dropped, std::vector{x1, x2});
      EXPECT_NEAR(full, partial, 1e-12) << rule->name();
    }
  }
}

TEST(FaginWimmersTest, D3ContinuityInTheWeights) {
  // Small weight perturbations change the score by O(perturbation).
  Rng rng(101);
  std::vector<double> x{0.3, 0.8, 0.6};
  double eps = 1e-7;
  Weighting base = W({0.5, 0.3, 0.2});
  Weighting nudged = W({0.5 + eps, 0.3, 0.2 - eps});
  double a = FaginWimmersScore(*MinRule(), base, x);
  double b = FaginWimmersScore(*MinRule(), nudged, x);
  EXPECT_NEAR(a, b, 1e-5);
}

TEST(FaginWimmersTest, D3PrimeLocalLinearityForOrderedWeightings) {
  // f_{αΘ + (1-α)Θ'}(X) = α·f_Θ(X) + (1-α)·f_Θ'(X) for ordered Θ, Θ'.
  Rng rng(103);
  Weighting t1 = W({0.7, 0.2, 0.1});
  Weighting t2 = W({0.4, 0.35, 0.25});
  for (const ScoringRulePtr& rule : {MinRule(), GeometricMeanRule()}) {
    for (double alpha : {0.0, 0.25, 0.5, 0.9, 1.0}) {
      Result<Weighting> mixed = t1.Mix(t2, alpha);
      ASSERT_TRUE(mixed.ok());
      for (int i = 0; i < 100; ++i) {
        std::vector<double> x = UniformGrades(&rng, 3);
        double lhs = FaginWimmersScore(*rule, *mixed, x);
        double rhs = alpha * FaginWimmersScore(*rule, t1, x) +
                     (1.0 - alpha) * FaginWimmersScore(*rule, t2, x);
        EXPECT_NEAR(lhs, rhs, 1e-12) << rule->name();
      }
    }
  }
}

TEST(FaginWimmersTest, WellDefinedUnderTiedWeights) {
  // Paper §5: if θ2 = θ3 the tied prefix choice is multiplied by zero, so
  // either order gives the same value. Compare against the convex form
  // computed with the reversed tie order by permuting the arguments.
  Weighting theta = W({0.5, 0.25, 0.25});
  std::vector<double> x{0.9, 0.2, 0.7};
  std::vector<double> x_swapped{0.9, 0.7, 0.2};  // swap the tied args
  double a = FaginWimmersScore(*MinRule(), theta, x);
  double b = FaginWimmersScore(*MinRule(), theta, x_swapped);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(FaginWimmersTest, CoefficientsFormConvexCombination) {
  // The result always lies between min and max of the prefix values, being
  // a convex combination of f(x1), f(x1,x2), ..., f(x1..xm).
  Rng rng(107);
  Weighting theta = W({0.5, 0.3, 0.2});
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = UniformGrades(&rng, 3);
    std::vector<double> sorted_x = x;  // weights already ordered
    double f1 = x[0];
    double f2 = std::min(x[0], x[1]);
    double f3 = std::min({x[0], x[1], x[2]});
    double lo = std::min({f1, f2, f3});
    double hi = std::max({f1, f2, f3});
    double got = FaginWimmersScore(*MinRule(), theta, x);
    EXPECT_GE(got, lo - 1e-12);
    EXPECT_LE(got, hi + 1e-12);
  }
}

TEST(WeightedRuleTest, InheritsMonotonicityAndStrictness) {
  // Paper §5: "monotonicity and strictness of the (unweighted) f is
  // inherited by the (weighted) functions."
  Weighting theta = W({0.6, 0.4});
  ScoringRulePtr weighted_min = WeightedRule(MinRule(), theta);
  EXPECT_TRUE(weighted_min->monotone());
  EXPECT_TRUE(weighted_min->strict());
  Rng rng(109);
  EXPECT_TRUE(CheckMonotoneEmpirically(*weighted_min, 2, 1000, &rng));
  EXPECT_TRUE(CheckStrictEmpirically(*weighted_min, 2, 1000, &rng));

  ScoringRulePtr weighted_max = WeightedRule(MaxRule(), theta);
  EXPECT_TRUE(weighted_max->monotone());
  EXPECT_FALSE(weighted_max->strict());  // max was never strict

  // A zero weight removes strictness of the full-arity rule (that argument
  // can be 0 while the score stays 1).
  ScoringRulePtr degenerate = WeightedRule(MinRule(), W({1.0, 0.0}));
  EXPECT_FALSE(degenerate->strict());
  std::vector<double> x{1.0, 0.0};
  EXPECT_DOUBLE_EQ(degenerate->Apply(x), 1.0);
}

TEST(OwaRuleTest, RecoversMinMaxAndMean) {
  Rng rng(113);
  ScoringRulePtr as_min = OwaRule(W({0.0, 0.0, 1.0}));
  ScoringRulePtr as_max = OwaRule(W({1.0, 0.0, 0.0}));
  ScoringRulePtr as_avg = OwaRule(Weighting::Equal(3));
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x = UniformGrades(&rng, 3);
    EXPECT_DOUBLE_EQ(as_min->Apply(x), MinRule()->Apply(x));
    EXPECT_DOUBLE_EQ(as_max->Apply(x), MaxRule()->Apply(x));
    EXPECT_NEAR(as_avg->Apply(x), ArithmeticMeanRule()->Apply(x), 1e-12);
  }
}

TEST(OwaRuleTest, WeightsAttachToRanksNotArguments) {
  // 0.7 on the largest, 0.3 on the smallest — regardless of position.
  ScoringRulePtr owa = OwaRule(W({0.7, 0.3}));
  std::vector<double> a{0.2, 0.8};
  std::vector<double> b{0.8, 0.2};
  EXPECT_DOUBLE_EQ(owa->Apply(a), 0.7 * 0.8 + 0.3 * 0.2);
  EXPECT_DOUBLE_EQ(owa->Apply(a), owa->Apply(b));
}

TEST(OwaRuleTest, PropertiesMatchDeclaredFlags) {
  Rng rng(127);
  ScoringRulePtr strict_owa = OwaRule(W({0.5, 0.3, 0.2}));
  EXPECT_TRUE(strict_owa->monotone());
  EXPECT_TRUE(strict_owa->strict());
  EXPECT_TRUE(CheckMonotoneEmpirically(*strict_owa, 3, 500, &rng));
  EXPECT_TRUE(CheckStrictEmpirically(*strict_owa, 3, 500, &rng));

  ScoringRulePtr lax_owa = OwaRule(W({0.5, 0.5, 0.0}));
  EXPECT_FALSE(lax_owa->strict());
  std::vector<double> almost{1.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(lax_owa->Apply(almost), 1.0);  // the witness
  EXPECT_NE(lax_owa->name().find("owa"), std::string::npos);
}

TEST(WeightedRuleTest, NameMentionsWeightsAndBase) {
  ScoringRulePtr rule = WeightedRule(MinRule(), W({0.75, 0.25}));
  EXPECT_NE(rule->name().find("min"), std::string::npos);
  EXPECT_NE(rule->name().find("0.75"), std::string::npos);
}

}  // namespace
}  // namespace fuzzydb
