#include "image/color.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fuzzydb {
namespace {

TEST(PaletteTest, RequestedSizeAndDistinctColors) {
  for (size_t k : {2u, 8u, 64u, 100u}) {
    Palette p = Palette::Uniform(k);
    EXPECT_EQ(p.size(), k);
    std::set<std::array<double, 3>> unique;
    for (size_t i = 0; i < k; ++i) {
      unique.insert({p.color(i)[0], p.color(i)[1], p.color(i)[2]});
    }
    EXPECT_EQ(unique.size(), k) << "palette colors must be distinct, k=" << k;
  }
}

TEST(PaletteTest, ColorsInsideRgbCube) {
  Rng rng(431);
  Palette p = Palette::Uniform(64, &rng);
  for (size_t i = 0; i < p.size(); ++i) {
    for (double ch : p.color(i)) {
      EXPECT_GE(ch, 0.0);
      EXPECT_LE(ch, 1.0);
    }
  }
}

TEST(PaletteTest, NearestFindsExactColor) {
  Palette p = Palette::Uniform(27);
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.Nearest(p.color(i)), i);
  }
}

TEST(RgbDistanceTest, MetricBasics) {
  Rgb a{0, 0, 0}, b{1, 1, 1};
  EXPECT_DOUBLE_EQ(RgbDistance(a, a), 0.0);
  EXPECT_NEAR(RgbDistance(a, b), std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(RgbDistance(a, b), RgbDistance(b, a));
}

TEST(HistogramTest, ValidateAndNormalize) {
  EXPECT_FALSE(ValidateHistogram({}).ok());
  EXPECT_FALSE(ValidateHistogram({0.5, 0.4}).ok());  // mass 0.9
  EXPECT_FALSE(ValidateHistogram({1.5, -0.5}).ok());
  EXPECT_TRUE(ValidateHistogram({0.25, 0.75}).ok());

  Result<Histogram> norm = NormalizeHistogram({2.0, 6.0});
  ASSERT_TRUE(norm.ok());
  EXPECT_DOUBLE_EQ((*norm)[0], 0.25);
  EXPECT_FALSE(NormalizeHistogram({0.0, 0.0}).ok());
  EXPECT_FALSE(NormalizeHistogram({-1.0, 2.0}).ok());
}

TEST(RandomHistogramTest, ProducesValidStructuredHistograms) {
  Rng rng(433);
  for (int i = 0; i < 50; ++i) {
    Histogram h = RandomHistogram(&rng, 64, 3, 0.1);
    EXPECT_TRUE(ValidateHistogram(h).ok());
    // Peak structure: the largest bin should dominate the uniform noise
    // floor of 0.1/64.
    double max_bin = *std::max_element(h.begin(), h.end());
    EXPECT_GT(max_bin, 0.05);
  }
}

TEST(TargetHistogramTest, ConcentratesOnNearestBin) {
  Palette p = Palette::Uniform(64);
  Rgb red{1.0, 0.0, 0.0};
  Histogram h = TargetHistogram(p, red, 0.2);
  EXPECT_TRUE(ValidateHistogram(h).ok());
  size_t center = p.Nearest(red);
  EXPECT_DOUBLE_EQ(h[center], 0.8);
  // Zero spread puts all mass on one bin.
  Histogram pure = TargetHistogram(p, red, 0.0);
  EXPECT_DOUBLE_EQ(pure[center], 1.0);
}

TEST(HistogramDistanceTest, L1AndIntersectionDuality) {
  Rng rng(439);
  for (int i = 0; i < 100; ++i) {
    Histogram x = RandomHistogram(&rng, 16);
    Histogram y = RandomHistogram(&rng, 16);
    double l1 = HistogramL1Distance(x, y);
    double inter = HistogramIntersection(x, y);
    EXPECT_GE(l1, 0.0);
    EXPECT_LE(l1, 2.0 + 1e-12);
    EXPECT_GE(inter, 0.0);
    EXPECT_LE(inter, 1.0 + 1e-12);
    // For unit-mass histograms: intersection = 1 - L1/2.
    EXPECT_NEAR(inter, 1.0 - l1 / 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(HistogramL1Distance(x, x), 0.0);
    EXPECT_NEAR(HistogramIntersection(x, x), 1.0, 1e-12);
  }
}

TEST(HistogramDistanceTest, L1IsBlindToCrossBinSimilarity) {
  // Moving mass to a NEARBY color and to a FAR color cost the same under
  // L1 — the defect the quadratic form repairs (paper §2).
  Histogram base(8, 0.0), near(8, 0.0), far(8, 0.0);
  base[0] = 1.0;
  near[1] = 1.0;
  far[7] = 1.0;
  EXPECT_DOUBLE_EQ(HistogramL1Distance(base, near),
                   HistogramL1Distance(base, far));
}

TEST(AverageColorTest, MatchesWeightedSum) {
  Palette p = Palette::Uniform(8);
  Histogram h(8, 0.0);
  h[0] = 0.5;
  h[7] = 0.5;
  Rgb avg = AverageColor(p, h);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(avg[c], 0.5 * (p.color(0)[c] + p.color(7)[c]), 1e-12);
  }
}

}  // namespace
}  // namespace fuzzydb
