#include "relational/table.h"

#include <gtest/gtest.h>

namespace fuzzydb {
namespace {

Schema CdSchema() {
  return *Schema::Create({{"Artist", ValueType::kString},
                          {"Album", ValueType::kString},
                          {"Year", ValueType::kInt64}});
}

std::vector<Value> Row(const char* artist, const char* album, int64_t year) {
  return {Value(std::string(artist)), Value(std::string(album)), Value(year)};
}

TEST(TableTest, InsertGetScan) {
  Table t("cds", CdSchema());
  ASSERT_TRUE(t.Insert(1, Row("Beatles", "Abbey Road", 1969)).ok());
  ASSERT_TRUE(t.Insert(2, Row("Kinks", "Arthur", 1969)).ok());
  EXPECT_EQ(t.size(), 2u);

  Result<const std::vector<Value>*> row = t.Get(1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((**row)[0].AsString(), "Beatles");
  EXPECT_FALSE(t.Get(99).ok());

  std::vector<ObjectId> seen;
  t.Scan([&](ObjectId id, const std::vector<Value>&) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<ObjectId>{1, 2}));
}

TEST(TableTest, InsertValidatesSchemaAndDuplicates) {
  Table t("cds", CdSchema());
  EXPECT_FALSE(t.Insert(1, {Value(std::string("x"))}).ok());  // arity
  EXPECT_FALSE(
      t.Insert(1, {Value(int64_t{1}), Value(std::string("y")),
                   Value(int64_t{2})})
          .ok());  // type
  ASSERT_TRUE(t.Insert(1, Row("Beatles", "Help!", 1965)).ok());
  EXPECT_EQ(t.Insert(1, Row("Beatles", "Help!", 1965)).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, DeleteRemovesRowAndPostings) {
  Table t("cds", CdSchema());
  ASSERT_TRUE(t.CreateIndex("Artist").ok());
  ASSERT_TRUE(t.Insert(1, Row("Beatles", "Abbey Road", 1969)).ok());
  ASSERT_TRUE(t.Insert(2, Row("Beatles", "Help!", 1965)).ok());
  ASSERT_TRUE(t.Delete(1).ok());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_FALSE(t.Get(1).ok());
  EXPECT_EQ(t.Delete(1).code(), StatusCode::kNotFound);
  const BTreeIndex* index = t.IndexOn("Artist");
  ASSERT_NE(index, nullptr);
  Result<std::vector<ObjectId>> hits =
      index->Lookup(Value(std::string("Beatles")));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, std::vector<ObjectId>{2});
}

TEST(TableTest, IndexBuiltOverExistingAndFutureRows) {
  Table t("cds", CdSchema());
  ASSERT_TRUE(t.Insert(1, Row("Beatles", "Abbey Road", 1969)).ok());
  ASSERT_TRUE(t.CreateIndex("Artist").ok());
  ASSERT_TRUE(t.Insert(2, Row("Beatles", "Revolver", 1966)).ok());
  ASSERT_TRUE(t.Insert(3, Row("Who", "Tommy", 1969)).ok());

  const BTreeIndex* index = t.IndexOn("Artist");
  ASSERT_NE(index, nullptr);
  Result<std::vector<ObjectId>> hits =
      index->Lookup(Value(std::string("Beatles")));
  ASSERT_TRUE(hits.ok());
  std::vector<ObjectId> got = *hits;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<ObjectId>{1, 2}));

  EXPECT_EQ(t.IndexOn("Year"), nullptr);
  EXPECT_FALSE(t.CreateIndex("Nope").ok());
}

TEST(TableTest, NullColumnValuesAreNotIndexed) {
  Table t("cds", CdSchema());
  ASSERT_TRUE(t.CreateIndex("Artist").ok());
  ASSERT_TRUE(
      t.Insert(1, {Value(), Value(std::string("Untitled")), Value()}).ok());
  const BTreeIndex* index = t.IndexOn("Artist");
  EXPECT_EQ(index->size(), 0u);
  ASSERT_TRUE(t.Delete(1).ok());  // must not fail on the unindexed NULL
}

}  // namespace
}  // namespace fuzzydb
