#include "relational/btree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace fuzzydb {
namespace {

TEST(BTreeTest, InsertAndLookup) {
  BTreeIndex index(ValueType::kInt64);
  ASSERT_TRUE(index.Insert(Value(int64_t{5}), 100).ok());
  ASSERT_TRUE(index.Insert(Value(int64_t{5}), 101).ok());
  ASSERT_TRUE(index.Insert(Value(int64_t{7}), 102).ok());
  EXPECT_EQ(index.size(), 3u);
  Result<std::vector<ObjectId>> hits = index.Lookup(Value(int64_t{5}));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
  EXPECT_TRUE(index.Lookup(Value(int64_t{6}))->empty());
}

TEST(BTreeTest, RejectsNullAndMistypedKeys) {
  BTreeIndex index(ValueType::kInt64);
  EXPECT_FALSE(index.Insert(Value(), 1).ok());
  EXPECT_FALSE(index.Insert(Value(std::string("x")), 1).ok());
  EXPECT_FALSE(index.Lookup(Value(1.5)).ok());
}

TEST(BTreeTest, SplitsGrowHeightAndPreserveContents) {
  BTreeIndex index(ValueType::kInt64, /*fanout=*/4);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(index.Insert(Value(int64_t{i}), 1000 + i).ok());
  }
  EXPECT_EQ(index.size(), static_cast<size_t>(n));
  EXPECT_GT(index.Height(), 2u);  // fanout 4 must split repeatedly
  for (int i = 0; i < n; ++i) {
    Result<std::vector<ObjectId>> hits = index.Lookup(Value(int64_t{i}));
    ASSERT_TRUE(hits.ok());
    ASSERT_EQ(hits->size(), 1u) << "key " << i;
    EXPECT_EQ((*hits)[0], static_cast<ObjectId>(1000 + i));
  }
}

TEST(BTreeTest, RandomizedAgainstReferenceMap) {
  Rng rng(401);
  BTreeIndex index(ValueType::kInt64, 8);
  std::multimap<int64_t, ObjectId> reference;
  for (int i = 0; i < 3000; ++i) {
    int64_t key = rng.NextInt(0, 300);
    ObjectId id = static_cast<ObjectId>(i);
    ASSERT_TRUE(index.Insert(Value(key), id).ok());
    reference.emplace(key, id);
  }
  for (int64_t key = 0; key <= 300; ++key) {
    auto [lo, hi] = reference.equal_range(key);
    std::vector<ObjectId> expected;
    for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
    std::sort(expected.begin(), expected.end());
    Result<std::vector<ObjectId>> hits = index.Lookup(Value(key));
    ASSERT_TRUE(hits.ok());
    std::vector<ObjectId> got = *hits;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "key " << key;
  }
}

TEST(BTreeTest, RangeScanInKeyOrder) {
  BTreeIndex index(ValueType::kInt64, 6);
  for (int i = 100; i >= 0; --i) {
    ASSERT_TRUE(index.Insert(Value(int64_t{i}), static_cast<ObjectId>(i)).ok());
  }
  std::vector<int64_t> keys;
  ASSERT_TRUE(index
                  .RangeScan(Value(int64_t{10}), Value(int64_t{20}),
                             [&](const Value& k, ObjectId) {
                               keys.push_back(k.AsInt64());
                             })
                  .ok());
  ASSERT_EQ(keys.size(), 11u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], static_cast<int64_t>(10 + i));
  }
}

TEST(BTreeTest, UnboundedRangeScans) {
  BTreeIndex index(ValueType::kInt64, 6);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(index.Insert(Value(int64_t{i}), static_cast<ObjectId>(i)).ok());
  }
  size_t count = 0;
  ASSERT_TRUE(
      index.RangeScan(Value(), Value(), [&](const Value&, ObjectId) {
        ++count;
      }).ok());
  EXPECT_EQ(count, 50u);

  count = 0;
  ASSERT_TRUE(index
                  .RangeScan(Value(int64_t{40}), Value(),
                             [&](const Value&, ObjectId) { ++count; })
                  .ok());
  EXPECT_EQ(count, 10u);
  count = 0;
  ASSERT_TRUE(index
                  .RangeScan(Value(), Value(int64_t{9}),
                             [&](const Value&, ObjectId) { ++count; })
                  .ok());
  EXPECT_EQ(count, 10u);
}

TEST(BTreeTest, EraseRemovesSinglePosting) {
  BTreeIndex index(ValueType::kString, 4);
  ASSERT_TRUE(index.Insert(Value(std::string("a")), 1).ok());
  ASSERT_TRUE(index.Insert(Value(std::string("a")), 2).ok());
  ASSERT_TRUE(index.Erase(Value(std::string("a")), 1).ok());
  EXPECT_EQ(index.size(), 1u);
  Result<std::vector<ObjectId>> hits = index.Lookup(Value(std::string("a")));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, std::vector<ObjectId>{2});
  EXPECT_EQ(index.Erase(Value(std::string("a")), 99).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(index.Erase(Value(std::string("zz")), 1).code(),
            StatusCode::kNotFound);
}

TEST(BTreeTest, StringKeysSortLexicographically) {
  BTreeIndex index(ValueType::kString, 4);
  for (const char* name : {"pear", "apple", "fig", "banana", "cherry"}) {
    ASSERT_TRUE(index.Insert(Value(std::string(name)), 1).ok());
  }
  std::vector<std::string> keys;
  ASSERT_TRUE(index
                  .RangeScan(Value(), Value(),
                             [&](const Value& k, ObjectId) {
                               keys.push_back(k.AsString());
                             })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "banana", "cherry",
                                            "fig", "pear"}));
}

}  // namespace
}  // namespace fuzzydb
