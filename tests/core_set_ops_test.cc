// Fuzzy-set algebra tests ([Za65], paper §3).

#include "core/set_ops.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fuzzydb {
namespace {

GradedSet Make(std::initializer_list<GradedObject> items) {
  Result<GradedSet> s = GradedSet::FromPairs(items);
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(FuzzySetOpsTest, ZadehUnionAndIntersection) {
  GradedSet a = Make({{1, 0.8}, {2, 0.3}});
  GradedSet b = Make({{2, 0.6}, {3, 0.5}});

  Result<GradedSet> u = FuzzyUnion(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u->GradeOf(1), 0.8);
  EXPECT_DOUBLE_EQ(*u->GradeOf(2), 0.6);  // max(0.3, 0.6)
  EXPECT_DOUBLE_EQ(*u->GradeOf(3), 0.5);

  Result<GradedSet> i = FuzzyIntersection(a, b);
  ASSERT_TRUE(i.ok());
  EXPECT_DOUBLE_EQ(*i->GradeOf(1), 0.0);  // absent from b
  EXPECT_DOUBLE_EQ(*i->GradeOf(2), 0.3);  // min(0.3, 0.6)
  EXPECT_DOUBLE_EQ(*i->GradeOf(3), 0.0);
}

TEST(FuzzySetOpsTest, GeneralizedTNormIntersection) {
  GradedSet a = Make({{1, 0.5}});
  GradedSet b = Make({{1, 0.4}});
  Result<GradedSet> i =
      FuzzyIntersection(a, b, TNormRule(TNormKind::kProduct));
  ASSERT_TRUE(i.ok());
  EXPECT_DOUBLE_EQ(*i->GradeOf(1), 0.2);
  Result<GradedSet> u =
      FuzzyUnion(a, b, TCoNormRule(TCoNormKind::kProbSum));
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u->GradeOf(1), 0.7);
  EXPECT_FALSE(FuzzyUnion(a, b, nullptr).ok());
  EXPECT_FALSE(FuzzyIntersection(a, b, nullptr).ok());
}

TEST(FuzzySetOpsTest, LatticeLawsUnderZadehOps) {
  // Commutativity, idempotence, absorption, De Morgan — property-tested on
  // random graded sets.
  Rng rng(1201);
  for (int trial = 0; trial < 30; ++trial) {
    GradedSet a, b;
    std::vector<ObjectId> universe;
    for (ObjectId id = 1; id <= 12; ++id) {
      universe.push_back(id);
      if (rng.NextBernoulli(0.7)) {
        ASSERT_TRUE(a.Insert(id, rng.NextDouble()).ok());
      }
      if (rng.NextBernoulli(0.7)) {
        ASSERT_TRUE(b.Insert(id, rng.NextDouble()).ok());
      }
    }
    GradedSet ab_u = *FuzzyUnion(a, b);
    GradedSet ba_u = *FuzzyUnion(b, a);
    GradedSet ab_i = *FuzzyIntersection(a, b);
    for (ObjectId id : universe) {
      EXPECT_DOUBLE_EQ(ab_u.GradeOf(id).value_or(0.0),
                       ba_u.GradeOf(id).value_or(0.0));
      // Idempotence.
      EXPECT_DOUBLE_EQ(
          FuzzyUnion(a, a)->GradeOf(id).value_or(0.0),
          a.GradeOf(id).value_or(0.0));
      // Absorption: A ∩ (A ∪ B) = A.
      EXPECT_DOUBLE_EQ(
          FuzzyIntersection(a, ab_u)->GradeOf(id).value_or(0.0),
          a.GradeOf(id).value_or(0.0));
      // De Morgan: complement(A ∪ B) = complement(A) ∩ complement(B).
      GradedSet na = *FuzzyComplement(a, universe);
      GradedSet nb = *FuzzyComplement(b, universe);
      EXPECT_NEAR(FuzzyComplement(ab_u, universe)
                      ->GradeOf(id)
                      .value_or(0.0),
                  FuzzyIntersection(na, nb)->GradeOf(id).value_or(0.0),
                  1e-12);
      // A ∩ B <= A <= A ∪ B pointwise.
      EXPECT_LE(ab_i.GradeOf(id).value_or(0.0),
                a.GradeOf(id).value_or(0.0) + 1e-12);
      EXPECT_LE(a.GradeOf(id).value_or(0.0),
                ab_u.GradeOf(id).value_or(0.0) + 1e-12);
    }
  }
}

TEST(FuzzySetOpsTest, ComplementRequiresConsistentUniverse) {
  GradedSet a = Make({{1, 0.4}, {5, 0.9}});
  std::vector<ObjectId> universe{1, 2, 3, 4, 5};
  Result<GradedSet> c = FuzzyComplement(a, universe);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c->GradeOf(1), 0.6);
  EXPECT_DOUBLE_EQ(*c->GradeOf(2), 1.0);  // absent -> grade 0 -> neg 1
  EXPECT_NEAR(*c->GradeOf(5), 0.1, 1e-12);

  EXPECT_FALSE(FuzzyComplement(a, {1, 2}).ok());     // member outside
  EXPECT_FALSE(FuzzyComplement(a, {1, 1, 5}).ok());  // duplicate ids
  EXPECT_FALSE(FuzzyComplement(a, universe, nullptr).ok());
}

TEST(FuzzySetOpsTest, SugenoComplementIsNotInvolutiveUnderMaxLaw) {
  // Excluded middle fails in fuzzy logic: A ∪ complement(A) != universe.
  GradedSet a = Make({{1, 0.5}});
  std::vector<ObjectId> universe{1};
  GradedSet na = *FuzzyComplement(a, universe);
  GradedSet excluded = *FuzzyUnion(a, na);
  EXPECT_LT(*excluded.GradeOf(1), 1.0);  // 0.5 under Zadeh ops
}

TEST(AlphaCutTest, ThresholdsAndValidates) {
  GradedSet a = Make({{1, 0.2}, {2, 0.9}, {3, 0.5}});
  Result<std::vector<ObjectId>> cut = AlphaCut(a, 0.5);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(*cut, (std::vector<ObjectId>{2, 3}));
  EXPECT_EQ(AlphaCut(a, 0.0)->size(), 3u);
  EXPECT_TRUE(AlphaCut(a, 0.95)->empty());
  EXPECT_FALSE(AlphaCut(a, 1.5).ok());
  // α-cuts are nested: higher alpha yields a subset.
  Result<std::vector<ObjectId>> lo = AlphaCut(a, 0.2);
  Result<std::vector<ObjectId>> hi = AlphaCut(a, 0.6);
  for (ObjectId id : *hi) {
    EXPECT_NE(std::find(lo->begin(), lo->end(), id), lo->end());
  }
}

TEST(CardinalityTest, SumsGradesAndSubsethood) {
  GradedSet a = Make({{1, 0.5}, {2, 0.5}});
  GradedSet b = Make({{1, 1.0}, {2, 1.0}, {3, 0.4}});
  EXPECT_DOUBLE_EQ(FuzzyCardinality(a), 1.0);
  EXPECT_DOUBLE_EQ(FuzzyCardinality(GradedSet{}), 0.0);
  // A is pointwise inside B -> subsethood 1; B is not inside A.
  EXPECT_DOUBLE_EQ(Subsethood(a, b), 1.0);
  EXPECT_LT(Subsethood(b, a), 0.5);
  EXPECT_DOUBLE_EQ(Subsethood(GradedSet{}, a), 1.0);
}

}  // namespace
}  // namespace fuzzydb
