#include "sim/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/stats.h"
#include "middleware/naive.h"
#include "sim/experiment.h"

namespace fuzzydb {
namespace {

TEST(WorkloadTest, IndependentUniformShape) {
  Rng rng(601);
  Workload w = IndependentUniform(&rng, 1000, 3);
  EXPECT_EQ(w.n(), 1000u);
  EXPECT_EQ(w.m(), 3u);
  for (const auto& col : w.columns) {
    EXPECT_NEAR(Mean(col), 0.5, 0.05);
    for (double g : col) {
      EXPECT_GE(g, 0.0);
      EXPECT_LT(g, 1.0);
    }
  }
  Result<std::vector<VectorSource>> sources = w.MakeSources();
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(sources->size(), 3u);
  EXPECT_EQ((*sources)[0].Size(), 1000u);
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  double ma = Mean(a), mb = Mean(b);
  double num = 0, da = 0, db = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  return num / std::sqrt(da * db);
}

TEST(WorkloadTest, CorrelatedColumnsActuallyCorrelate) {
  Rng rng(607);
  Workload independent = Correlated(&rng, 3000, 2, 0.0);
  Workload strong = Correlated(&rng, 3000, 2, 0.9);
  double r_ind =
      PearsonCorrelation(independent.columns[0], independent.columns[1]);
  double r_strong = PearsonCorrelation(strong.columns[0], strong.columns[1]);
  EXPECT_NEAR(r_ind, 0.0, 0.1);
  EXPECT_GT(r_strong, 0.8);
}

TEST(WorkloadTest, AntiCorrelatedColumnsOppose) {
  Rng rng(613);
  Workload w = AntiCorrelated(&rng, 3000, 0.02);
  EXPECT_EQ(w.m(), 2u);
  double r = PearsonCorrelation(w.columns[0], w.columns[1]);
  EXPECT_LT(r, -0.9);
  for (size_t j = 0; j < 2; ++j) {
    for (double g : w.columns[j]) {
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, 1.0);
    }
  }
}

TEST(WorkloadTest, PathologicalInstanceStructure) {
  Workload w = PathologicalMiddle(1000);
  // All grades distinct and in (0.5, 1]; the best min-object sits in the
  // middle of the object order.
  size_t best = 0;
  double best_min = 0.0;
  for (size_t i = 0; i < w.n(); ++i) {
    double lo = std::min(w.columns[0][i], w.columns[1][i]);
    if (lo > best_min) {
      best_min = lo;
      best = i;
    }
  }
  EXPECT_GT(best, w.n() / 4);
  EXPECT_LT(best, 3 * w.n() / 4);
  // List orders oppose: column 0 descends with i, column 1 ascends.
  EXPECT_GT(w.columns[0][0], w.columns[0][999]);
  EXPECT_LT(w.columns[1][0], w.columns[1][999]);
}

TEST(WorkloadTest, ZeroOneColumnSelectivity) {
  Rng rng(617);
  std::vector<double> col = ZeroOneColumn(&rng, 1000, 0.1);
  size_t ones = 0;
  for (double g : col) {
    EXPECT_TRUE(g == 0.0 || g == 1.0);
    ones += g == 1.0;
  }
  EXPECT_EQ(ones, 100u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"n", "cost"});
  table.AddRow({"100", "42"});
  table.AddRow({"100000", "123456"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(TablePrinter::Num(3.14159, 3), "3.14");
}

TEST(SweepCostTest, RunsAndAverages) {
  WorkloadFactory factory = [](Rng* rng, size_t n) {
    return IndependentUniform(rng, n, 2);
  };
  AlgorithmRunner runner = [](std::span<GradedSource* const> sources,
                              size_t k) {
    return NaiveTopK(sources, *MinRule(), k);
  };
  Result<std::vector<CostPoint>> points =
      SweepCost(factory, runner, {100, 200}, 2, 5, 3, 42);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 2u);
  EXPECT_EQ((*points)[0].cost.total(), 200u);  // naive = m*n
  EXPECT_EQ((*points)[1].cost.total(), 400u);
  Result<LinearFit> fit = FitCostExponent(*points);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 1.0, 1e-9);  // naive is linear in N
  EXPECT_FALSE(SweepCost(factory, runner, {100}, 2, 5, 0, 42).ok());
}

}  // namespace
}  // namespace fuzzydb
