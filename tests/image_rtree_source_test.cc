// Equivalence and determinism harness for the R-tree sorted-access driver
// (DESIGN §3h). The headline guarantee: RtreeKnnSource streams the SAME
// graded set as the batch-graded QbicColorSource — same ids, bit-identical
// grades, same order — so every middleware algorithm returns bit-identical
// top-k answers whichever backend drives sorted access, serially and under
// PrefetchSource at every depth × pool size.

#include "image/rtree_source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>

#include "analysis/source_audit.h"
#include "common/thread_pool.h"
#include "image/qbic_source.h"
#include "middleware/combined.h"
#include "middleware/fagin.h"
#include "middleware/nra.h"
#include "middleware/parallel.h"
#include "middleware/threshold.h"

namespace fuzzydb {
namespace {

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

using ParallelRunner = Result<TopKResult> (*)(std::span<GradedSource* const>,
                                              const ScoringRule&, size_t,
                                              const ParallelOptions&);

Result<TopKResult> CombinedPeriod2TopK(std::span<GradedSource* const> sources,
                                       const ScoringRule& rule, size_t k,
                                       const ParallelOptions& options) {
  return CombinedTopK(sources, rule, k, 2, options);
}

struct AlgoCase {
  const char* name;
  ParallelRunner run;
};

const AlgoCase kAlgos[] = {
    {"fagin-a0", static_cast<ParallelRunner>(FaginTopK)},
    {"ta", static_cast<ParallelRunner>(ThresholdTopK)},
    {"nra", static_cast<ParallelRunner>(NoRandomAccessTopK)},
    {"ca-h2", CombinedPeriod2TopK},
};

class RtreeSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ImageStoreOptions options;
    options.num_images = 120;
    options.palette_size = 27;
    options.seed = 977;
    Result<ImageStore> store = ImageStore::Generate(options);
    ASSERT_TRUE(store.ok());
    store_ = std::make_unique<ImageStore>(std::move(*store));

    histograms_.reserve(store_->size());
    ids_.reserve(store_->size());
    for (const ImageRecord& rec : store_->images()) {
      histograms_.push_back(rec.histogram);
      ids_.push_back(rec.id);
    }
    Result<EigenFilter> filter =
        EigenFilter::Create(store_->color_distance(), 4);
    ASSERT_TRUE(filter.ok());
    Result<GeminiIndex> index = GeminiIndex::Build(
        &store_->color_distance(), std::move(*filter), &histograms_);
    ASSERT_TRUE(index.ok());
    index_ = std::make_unique<GeminiIndex>(std::move(*index));

    target_ = TargetHistogram(store_->palette(), {1.0, 0.2, 0.1});
  }

  Result<RtreeKnnSource> MakeDriver(bool use_quantized = true) const {
    RtreeKnnSourceOptions options;
    options.label = "Color~rtree";
    options.ids = ids_;
    options.use_quantized = use_quantized;
    return RtreeKnnSource::Create(index_.get(), target_, options);
  }

  Result<QbicColorSource> MakeReference() const {
    return QbicColorSource::Create(store_.get(), target_, "Color~batch");
  }

  std::unique_ptr<ImageStore> store_;
  std::unique_ptr<GeminiIndex> index_;
  std::vector<Histogram> histograms_;
  std::vector<ObjectId> ids_;
  Histogram target_;
};

TEST_F(RtreeSourceTest, StreamMatchesBatchSourceBitForBit) {
  for (bool quantized : {true, false}) {
    Result<RtreeKnnSource> driver = MakeDriver(quantized);
    Result<QbicColorSource> reference = MakeReference();
    ASSERT_TRUE(driver.ok() && reference.ok());
    ASSERT_EQ(driver->Size(), reference->Size());
    size_t n = 0;
    for (;;) {
      std::optional<GradedObject> a = driver->NextSorted();
      std::optional<GradedObject> r = reference->NextSorted();
      ASSERT_EQ(a.has_value(), r.has_value()) << "position " << n;
      if (!a.has_value()) break;
      ASSERT_EQ(a->id, r->id) << "quantized=" << quantized << " pos " << n;
      ASSERT_TRUE(BitEqual(a->grade, r->grade))
          << "quantized=" << quantized << " pos " << n;
      ++n;
    }
    EXPECT_EQ(n, store_->size());
    // The full drain refines every object exactly once.
    EXPECT_EQ(driver->stats().refinements, store_->size());
    EXPECT_EQ(driver->stats().emitted, store_->size());
  }
}

TEST_F(RtreeSourceTest, AuditorsConfirmContractAndEquivalence) {
  Result<RtreeKnnSource> driver = MakeDriver();
  Result<QbicColorSource> reference = MakeReference();
  ASSERT_TRUE(driver.ok() && reference.ok());

  SourceAuditOptions options;  // tol = 0: exact RandomAccess consistency
  AuditReport sorted = AuditSortedAccess(&*driver, options);
  EXPECT_TRUE(sorted.ok()) << sorted.ToString();

  AuditReport equiv = AuditSourceEquivalence(&*driver, &*reference, options);
  EXPECT_TRUE(equiv.ok()) << equiv.ToString();
}

TEST_F(RtreeSourceTest, RefinementIsLazyForShortPrefixes) {
  Result<RtreeKnnSource> driver = MakeDriver();
  ASSERT_TRUE(driver.ok());
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(driver->NextSorted().has_value());
  }
  EXPECT_EQ(driver->stats().emitted, 5u);
  // Certifying 5 releases must not have refined the whole database — the
  // driver's whole point vs the batch source's up-front O(N) grading.
  EXPECT_LT(driver->stats().refinements, store_->size());
  EXPECT_GE(driver->stats().refinements, 5u);
  // The incremental traversal visited the index.
  EXPECT_GT(driver->stats().node_accesses, 0u);
  EXPECT_GT(driver->stats().bound_computations, 0u);
}

TEST_F(RtreeSourceTest, RandomAccessMatchesReferenceAndUnknownIsZero) {
  Result<RtreeKnnSource> driver = MakeDriver();
  Result<QbicColorSource> reference = MakeReference();
  ASSERT_TRUE(driver.ok() && reference.ok());
  for (ObjectId id : {ids_.front(), ids_[7], ids_.back()}) {
    EXPECT_TRUE(
        BitEqual(driver->RandomAccess(id), reference->RandomAccess(id)));
  }
  EXPECT_EQ(driver->RandomAccess(999999), 0.0);
}

TEST_F(RtreeSourceTest, AtLeastMatchesReferenceAndPreservesCursor) {
  Result<RtreeKnnSource> driver = MakeDriver();
  Result<QbicColorSource> reference = MakeReference();
  ASSERT_TRUE(driver.ok() && reference.ok());

  // Move the sorted cursor, then issue filter accesses: the cursor must be
  // undisturbed afterwards.
  std::optional<GradedObject> first = driver->NextSorted();
  ASSERT_TRUE(first.has_value());

  for (double threshold : {1.1, 0.95, 0.8, 0.5, 0.0}) {
    std::vector<GradedObject> a = driver->AtLeast(threshold);
    std::vector<GradedObject> r = reference->AtLeast(threshold);
    ASSERT_EQ(a.size(), r.size()) << "threshold " << threshold;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, r[i].id) << "threshold " << threshold;
      EXPECT_TRUE(BitEqual(a[i].grade, r[i].grade))
          << "threshold " << threshold;
    }
  }

  std::optional<GradedObject> second = driver->NextSorted();
  std::optional<GradedObject> ref_second =
      (reference->NextSorted(), reference->NextSorted());
  ASSERT_TRUE(second.has_value() && ref_second.has_value());
  EXPECT_EQ(second->id, ref_second->id);
}

TEST_F(RtreeSourceTest, RestartReplaysTheIdenticalStream) {
  Result<RtreeKnnSource> driver = MakeDriver();
  ASSERT_TRUE(driver.ok());
  std::vector<GradedObject> first_run;
  while (auto next = driver->NextSorted()) first_run.push_back(*next);
  driver->RestartSorted();
  EXPECT_EQ(driver->stats().emitted, 0u);
  for (const GradedObject& expected : first_run) {
    std::optional<GradedObject> next = driver->NextSorted();
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->id, expected.id);
    EXPECT_TRUE(BitEqual(next->grade, expected.grade));
  }
  EXPECT_FALSE(driver->NextSorted().has_value());
}

TEST_F(RtreeSourceTest, CreateValidatesArguments) {
  EXPECT_FALSE(RtreeKnnSource::Create(nullptr, target_).ok());
  EXPECT_FALSE(
      RtreeKnnSource::Create(index_.get(), Histogram{0.5, 0.5}).ok());
  RtreeKnnSourceOptions bad_ids;
  bad_ids.ids = {1, 2, 3};  // must map every row or none
  EXPECT_FALSE(RtreeKnnSource::Create(index_.get(), target_, bad_ids).ok());
}

// The determinism harness: every middleware algorithm must return
// bit-identical answers whether sorted access on the color predicate is
// driven by the index or by the batch source — serial and at every
// prefetch depth × pool size. The texture source (m = 2) rides along
// unchanged in both source sets.
TEST_F(RtreeSourceTest, TopKAnswersMatchBatchBackendAtEveryDepthAndPool) {
  Result<RtreeKnnSource> driver = MakeDriver();
  Result<QbicColorSource> reference = MakeReference();
  Result<QbicTextureSource> texture =
      QbicTextureSource::Create(store_.get(), store_->image(3).texture);
  ASSERT_TRUE(driver.ok() && reference.ok() && texture.ok());

  std::vector<GradedSource*> rtree_set = {&*driver, &*texture};
  std::vector<GradedSource*> batch_set = {&*reference, &*texture};
  ScoringRulePtr rule = MinRule();
  const size_t k = 10;

  for (const AlgoCase& algo : kAlgos) {
    // Golden: the batch backend, serial.
    Result<TopKResult> golden =
        algo.run(batch_set, *rule, k, ParallelOptions{});
    ASSERT_TRUE(golden.ok()) << algo.name;

    for (size_t pool_size : {1u, 2u, 7u}) {
      ThreadPool pool(pool_size);
      for (size_t depth : {0u, 1u, 8u}) {  // 0 = serial, no prefetch
        ParallelOptions options;
        if (depth > 0) {
          options.pool = &pool;
          options.prefetch_depth = depth;
        }
        Result<TopKResult> got = algo.run(rtree_set, *rule, k, options);
        const std::string label = std::string(algo.name) + "/pool" +
                                  std::to_string(pool_size) + "/depth" +
                                  std::to_string(depth);
        ASSERT_TRUE(got.ok()) << label;
        ASSERT_EQ(golden->items.size(), got->items.size()) << label;
        for (size_t r = 0; r < golden->items.size(); ++r) {
          EXPECT_EQ(golden->items[r].id, got->items[r].id)
              << label << " rank " << r;
          EXPECT_TRUE(
              BitEqual(golden->items[r].grade, got->items[r].grade))
              << label << " rank " << r;
        }
        // Identical streams ⇒ identical consumed access counts, source by
        // source, whichever backend produced them.
        ASSERT_EQ(golden->per_source.size(), got->per_source.size()) << label;
        for (size_t j = 0; j < golden->per_source.size(); ++j) {
          EXPECT_EQ(golden->per_source[j].sorted, got->per_source[j].sorted)
              << label << " source " << j;
          EXPECT_EQ(golden->per_source[j].random, got->per_source[j].random)
              << label << " source " << j;
        }
      }
    }
  }
}

}  // namespace
}  // namespace fuzzydb
