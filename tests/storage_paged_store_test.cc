// Paged-store equivalence tests (DESIGN §3k): the acceptance criterion of
// the storage engine is that at every page size × pool size × shard count,
// the disk-backed store answers bit-identically to the RAM store built by
// ImageStore::Generate from the same seed. AuditPagingEquivalence does the
// exhaustive comparison; this file sweeps it over the configuration matrix
// and covers the store-level lifecycle (version stamp, metadata, Close,
// LoadToMemory, eviction pressure).
//
// Set FUZZYDB_STORAGE_STRESS=1 to widen the sweep (more pool sizes, more
// targets) — the ASan verify leg runs with it on.

#include "storage/paged_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/storage_audit.h"
#include "image/image_store.h"
#include "storage/column_file.h"
#include "storage/ingest.h"

namespace fuzzydb {
namespace storage {
namespace {

ImageStoreOptions SmallCollection() {
  ImageStoreOptions options;
  options.num_images = 400;
  options.palette_size = 16;
  options.seed = 20230807;
  options.tune_cascade = false;  // tuning changes costs, never answers
  return options;
}

bool StressMode() {
  const char* env = std::getenv("FUZZYDB_STORAGE_STRESS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "paged_" + name + ".fzdb";
}

// One ingest per page size, reused across pool configurations.
struct Fixture {
  ImageStore ram;
  IngestedCollection ingested;
  std::string path;
};

Fixture MakeFixture(const std::string& name, size_t page_bytes) {
  const ImageStoreOptions options = SmallCollection();
  Result<ImageStore> ram = ImageStore::Generate(options);
  EXPECT_TRUE(ram.ok()) << ram.status().ToString();
  ColumnFileOptions file_options;
  file_options.page_bytes = page_bytes;
  file_options.store_version = 42;
  const std::string path = TestPath(name);
  Result<IngestedCollection> ingested =
      IngestGeneratedCollection(options, path, file_options);
  EXPECT_TRUE(ingested.ok()) << ingested.status().ToString();
  return Fixture{std::move(ram).value(), std::move(ingested).value(), path};
}

StorageAuditOptions AuditOptions(const ImageStore& ram) {
  StorageAuditOptions options;
  const size_t probes = StressMode() ? 6 : 3;
  for (size_t t = 0; t < probes; ++t) {
    const size_t i = (t * 131) % ram.size();
    options.targets.push_back(
        ram.color_distance().Embed(ram.image(i).histogram));
  }
  options.k = 10;
  options.shard_counts = {2, 3};
  return options;
}

TEST(PagedStoreTest, BitIdenticalAcrossPageAndPoolSizes) {
  const std::vector<size_t> page_sizes = {4096, 64 * 1024};
  for (size_t page_bytes : page_sizes) {
    Fixture fx = MakeFixture("sweep_" + std::to_string(page_bytes), page_bytes);
    const StorageAuditOptions audit = AuditOptions(fx.ram);

    // Pool caps: tiny (4 pages — smaller than the file, so the scan
    // evicts) and default (everything fits). Stress adds an in-between.
    std::vector<size_t> pool_bytes = {4 * page_bytes, 256ull * 1024 * 1024};
    if (StressMode()) pool_bytes.insert(pool_bytes.begin() + 1, 8 * page_bytes);

    for (size_t pool_cap : pool_bytes) {
      SCOPED_TRACE("page_bytes=" + std::to_string(page_bytes) +
                   " pool_bytes=" + std::to_string(pool_cap));
      PagedStoreOptions store_options;
      store_options.pool_bytes = pool_cap;
      Result<std::unique_ptr<PagedEmbeddingStore>> paged =
          PagedEmbeddingStore::Open(fx.path, store_options);
      ASSERT_TRUE(paged.ok()) << paged.status().ToString();

      AuditReport report =
          AuditPagingEquivalence(**paged, fx.ram.embeddings(), audit);
      EXPECT_TRUE(report.ok()) << report.ToString();

      if (pool_cap == 4 * page_bytes && page_bytes == 4096) {
        // The tiny pool genuinely paged: the file is 13 pages, the pool 4.
        BufferPoolStats s = (*paged)->pool_stats();
        EXPECT_GT(s.evictions, 0u);
        EXPECT_GT(s.bytes_read_disk, 0u);
      }
    }
    std::remove(fx.path.c_str());
  }
}

TEST(PagedStoreTest, VersionAndMetadataSurviveTheRoundTrip) {
  Fixture fx = MakeFixture("meta", 4096);
  Result<std::unique_ptr<PagedEmbeddingStore>> paged =
      PagedEmbeddingStore::Open(fx.path);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  EXPECT_EQ((*paged)->version(), 42u);
  // The eigenbasis spectrum rides in the file's metadata block.
  EXPECT_EQ((*paged)->metadata(), fx.ram.color_distance().eigenvalues());
  EXPECT_EQ((*paged)->size(), fx.ram.size());
  EXPECT_EQ((*paged)->dim(), fx.ram.embeddings().dim());
  EXPECT_TRUE((*paged)->has_quantized());
  std::remove(fx.path.c_str());
}

TEST(PagedStoreTest, SingleRowDistanceMatchesRam) {
  Fixture fx = MakeFixture("probe", 4096);
  Result<std::unique_ptr<PagedEmbeddingStore>> paged =
      PagedEmbeddingStore::Open(fx.path);
  ASSERT_TRUE(paged.ok());
  const std::vector<double> target =
      fx.ram.color_distance().Embed(fx.ram.image(5).histogram);
  std::vector<double> expected(fx.ram.size());
  fx.ram.embeddings().BatchDistances(target, expected);
  for (size_t i : {size_t{0}, size_t{5}, size_t{131}, fx.ram.size() - 1}) {
    Result<double> d = (*paged)->Distance(target, i);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    EXPECT_EQ(*d, expected[i]) << "row " << i;
  }
  EXPECT_EQ((*paged)->Distance(target, fx.ram.size()).status().code(),
            StatusCode::kOutOfRange);
  std::remove(fx.path.c_str());
}

TEST(PagedStoreTest, LoadToMemoryReconstitutesTheRamStore) {
  Fixture fx = MakeFixture("load", 4096);
  Result<std::unique_ptr<PagedEmbeddingStore>> paged =
      PagedEmbeddingStore::Open(fx.path);
  ASSERT_TRUE(paged.ok());
  Result<EmbeddingStore> loaded = (*paged)->LoadToMemory();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The materialized store is itself a valid RAM reference: auditing the
  // paged store against it closes the loop disk → RAM → disk.
  AuditReport report =
      AuditPagingEquivalence(**paged, *loaded, AuditOptions(fx.ram));
  EXPECT_TRUE(report.ok()) << report.ToString();
  std::remove(fx.path.c_str());
}

TEST(PagedStoreTest, WarmCascadeReadsZeroDiskBytesAtLevelMinusOne) {
  Fixture fx = MakeFixture("warm", 4096);
  Result<std::unique_ptr<PagedEmbeddingStore>> paged =
      PagedEmbeddingStore::Open(fx.path);  // default pool: whole file fits
  ASSERT_TRUE(paged.ok());
  const std::vector<double> target =
      fx.ram.color_distance().Embed(fx.ram.image(9).histogram);
  CascadeOptions cascade;
  cascade.use_quantized = true;
  // Cold query faults in whatever survivor pages it needs.
  CascadeStats cold;
  ASSERT_TRUE((*paged)->CascadeKnn(target, 10, cascade, &cold).ok());
  // Warm repeat of the same query: the int8 level is RAM-resident and the
  // survivor pages are retained, so zero bytes come off disk.
  CascadeStats warm;
  ASSERT_TRUE((*paged)->CascadeKnn(target, 10, cascade, &warm).ok());
  EXPECT_EQ(warm.bytes_read_disk, 0u);
  EXPECT_EQ(warm.buffer_pool_misses, 0u);
  EXPECT_GT(warm.buffer_pool_hits, 0u);
  EXPECT_GT(cold.bytes_read_disk, 0u);
  std::remove(fx.path.c_str());
}

TEST(PagedStoreTest, QueriesAfterCloseFailCleanly) {
  Fixture fx = MakeFixture("close", 4096);
  Result<std::unique_ptr<PagedEmbeddingStore>> paged =
      PagedEmbeddingStore::Open(fx.path);
  ASSERT_TRUE(paged.ok());
  const std::vector<double> target(
      (*paged)->dim(), 0.25);
  (*paged)->Close();
  std::vector<double> out((*paged)->size());
  EXPECT_EQ((*paged)->BatchDistances(target, out).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*paged)->ExactKnn(target, 5).status().code(),
            StatusCode::kFailedPrecondition);
  (*paged)->Close();  // idempotent
  std::remove(fx.path.c_str());
}

TEST(PagedStoreTest, QuantizedTierCanBeDisabledAtOpen) {
  Fixture fx = MakeFixture("noquant", 4096);
  PagedStoreOptions options;
  options.load_quantized = false;
  Result<std::unique_ptr<PagedEmbeddingStore>> paged =
      PagedEmbeddingStore::Open(fx.path, options);
  ASSERT_TRUE(paged.ok());
  EXPECT_FALSE((*paged)->has_quantized());
  // Cascade still answers (it degrades to the float levels) and still
  // matches exact.
  const std::vector<double> target =
      fx.ram.color_distance().Embed(fx.ram.image(3).histogram);
  auto exact = (*paged)->ExactKnn(target, 10);
  auto cascade = (*paged)->CascadeKnn(target, 10);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(cascade.ok());
  EXPECT_EQ(*exact, *cascade);
  std::remove(fx.path.c_str());
}

}  // namespace
}  // namespace storage
}  // namespace fuzzydb
