// JsonReport emitter tests: the bench JSON files feed the perf-trajectory
// tooling, so the output must stay parseable — non-finite doubles become
// null (JSON has no nan/inf literals) and strings are escaped per RFC 8259.

#include "bench/json_report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace fuzzydb {
namespace {

TEST(JsonReportTest, EmptyReportIsAnEmptyObject) {
  JsonReport report;
  EXPECT_EQ(report.ToString(), "{\n}\n");
  EXPECT_EQ(report.size(), 0u);
}

TEST(JsonReportTest, FormatsScalars) {
  JsonReport report;
  report.Set("a.double", 2.5);
  report.Set("a.count", static_cast<size_t>(42));
  report.Set("a.label", std::string("plain"));
  EXPECT_EQ(report.ToString(),
            "{\n"
            "  \"a.double\": 2.5,\n"
            "  \"a.count\": 42,\n"
            "  \"a.label\": \"plain\"\n"
            "}\n");
}

TEST(JsonReportTest, NonFiniteDoublesBecomeNull) {
  JsonReport report;
  report.Set("nan", std::nan(""));
  report.Set("inf", std::numeric_limits<double>::infinity());
  report.Set("ninf", -std::numeric_limits<double>::infinity());
  report.Set("fine", 1.0);
  EXPECT_EQ(report.ToString(),
            "{\n"
            "  \"nan\": null,\n"
            "  \"inf\": null,\n"
            "  \"ninf\": null,\n"
            "  \"fine\": 1\n"
            "}\n");
}

TEST(JsonReportTest, EscapesStringsAndKeys) {
  JsonReport report;
  report.Set("quote", std::string("say \"hi\""));
  report.Set("backslash", std::string("a\\b"));
  report.Set("newline", std::string("line1\nline2"));
  report.Set("control", std::string("bell\x01" "end"));
  report.Set(std::string("weird\tkey"), static_cast<size_t>(1));
  EXPECT_EQ(report.ToString(),
            "{\n"
            "  \"quote\": \"say \\\"hi\\\"\",\n"
            "  \"backslash\": \"a\\\\b\",\n"
            "  \"newline\": \"line1\\nline2\",\n"
            "  \"control\": \"bell\\u0001end\",\n"
            "  \"weird\\tkey\": 1\n"
            "}\n");
}

TEST(JsonReportTest, PrecisionSurvivesRoundTripishValues) {
  JsonReport report;
  report.Set("pi", 3.141592653589793);
  // precision(10) keeps 10 significant digits.
  EXPECT_NE(report.ToString().find("3.141592654"), std::string::npos);
}

TEST(JsonReportTest, FormatsBooleans) {
  JsonReport report;
  report.Set("yes", true);
  report.Set("no", false);
  EXPECT_EQ(report.ToString(),
            "{\n"
            "  \"yes\": true,\n"
            "  \"no\": false\n"
            "}\n");
}

TEST(JsonReportTest, SetHostParallelismStampsFlagAndConcurrency) {
  JsonReport single;
  EXPECT_TRUE(single.SetHostParallelism(1));
  EXPECT_EQ(single.Lookup("contention_only"), "true");
  EXPECT_EQ(single.Lookup("config.hardware_concurrency"), "1");

  JsonReport multi;
  EXPECT_FALSE(multi.SetHostParallelism(8));
  EXPECT_EQ(multi.Lookup("contention_only"), "false");
  EXPECT_EQ(multi.Lookup("config.hardware_concurrency"), "8");
}

TEST(JsonReportTest, LookupReturnsEmptyForAbsentAndLastWriteForDuplicates) {
  JsonReport report;
  EXPECT_EQ(report.Lookup("missing"), "");
  report.Set("k", static_cast<size_t>(1));
  report.Set("k", static_cast<size_t>(2));
  EXPECT_EQ(report.Lookup("k"), "2");
}

TEST(JsonReportTest, DowngradeGuardFiresOnlyForMultiCoreOverwrites) {
  // A contention-only report must not silently replace a multi-core one...
  JsonReport multi;
  multi.SetHostParallelism(8);
  EXPECT_TRUE(JsonReport::WouldDowngrade(multi.ToString(),
                                         /*new_contention_only=*/true));
  // ...but every other combination writes through: multi-core over anything,
  // contention-only over contention-only, and anything over a legacy file
  // with no flag at all.
  EXPECT_FALSE(JsonReport::WouldDowngrade(multi.ToString(),
                                          /*new_contention_only=*/false));
  JsonReport single;
  single.SetHostParallelism(1);
  EXPECT_FALSE(JsonReport::WouldDowngrade(single.ToString(),
                                          /*new_contention_only=*/true));
  EXPECT_FALSE(JsonReport::WouldDowngrade("{\n}\n",
                                          /*new_contention_only=*/true));
}

}  // namespace
}  // namespace fuzzydb
