// Column-file format tests (DESIGN §3k): round trips, geometry, and —
// centrally — the corruption matrix: every malformed input must come back
// as a Status (InvalidArgument for "not ours / wrong version", DataLoss
// for "ours but the bytes lie"), never as an abort or a garbage answer.

#include "storage/column_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <vector>

#include "image/embedding_store.h"
#include "image/quantized_store.h"

namespace fuzzydb {
namespace storage {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "colfile_" + name + ".fzdb";
}

// Deterministic rows with a decaying per-dimension scale, embedding-like.
std::vector<std::vector<double>> MakeRows(size_t n, size_t dim,
                                          uint64_t seed = 42) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::vector<std::vector<double>> rows(n, std::vector<double>(dim));
  for (auto& row : rows) {
    for (size_t j = 0; j < dim; ++j) {
      row[j] = unit(rng) / (1.0 + 0.3 * static_cast<double>(j));
    }
  }
  return rows;
}

void WriteFile(const std::string& path,
               const std::vector<std::vector<double>>& rows,
               ColumnFileOptions options = {}) {
  auto writer = ColumnFileWriter::Create(path, rows[0].size(), options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (const auto& row : rows) {
    ASSERT_TRUE((*writer)->AppendRow(row).ok());
  }
  Status finished = (*writer)->Finish();
  ASSERT_TRUE(finished.ok()) << finished.ToString();
}

TEST(ColumnFileTest, RoundTripsRowsBitExactly) {
  const std::string path = TestPath("roundtrip");
  const size_t dim = 11;  // deliberately not a multiple of the line size
  const auto rows = MakeRows(100, dim);
  ColumnFileOptions options;
  options.page_bytes = 4096;
  options.metadata = {3.0, 2.0, 1.0};
  options.store_version = 7;
  WriteFile(path, rows, options);

  auto file = ColumnFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->count(), rows.size());
  EXPECT_EQ((*file)->dim(), dim);
  EXPECT_EQ((*file)->stride(), EmbeddingStore::RowStride(dim));
  EXPECT_EQ((*file)->store_version(), 7u);
  EXPECT_EQ((*file)->metadata(), options.metadata);

  // Every row, every payload double, bit-exact; pad doubles zero.
  const size_t stride = (*file)->stride();
  const size_t rpp = (*file)->rows_per_page();
  std::vector<char> page((*file)->page_bytes());
  for (uint64_t p = 0; p < (*file)->num_pages(); ++p) {
    ASSERT_TRUE((*file)->ReadPage(p, page).ok());
    const size_t begin = p * rpp;
    const size_t n = std::min(rpp, rows.size() - begin);
    for (size_t i = 0; i < n; ++i) {
      const double* disk = reinterpret_cast<const double*>(
          page.data() + i * stride * sizeof(double));
      EXPECT_EQ(0, std::memcmp(disk, rows[begin + i].data(),
                               dim * sizeof(double)))
          << "row " << begin + i;
      for (size_t j = dim; j < stride; ++j) {
        EXPECT_EQ(disk[j], 0.0) << "pad of row " << begin + i;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ColumnFileTest, PersistedQuantizedTierEqualsRebuilt) {
  const std::string path = TestPath("quantized");
  const size_t dim = 24;
  const auto rows = MakeRows(257, dim);  // odd count: partial last page
  ColumnFileOptions options;
  options.page_bytes = 4096;
  WriteFile(path, rows, options);

  auto file = ColumnFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  auto loaded = (*file)->LoadQuantized();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_FALSE(loaded->empty());

  // Rebuild from the same rows in RAM; the persisted parts must be
  // byte-identical (same scales arithmetic, same EncodeRowAgainst).
  const size_t stride = EmbeddingStore::RowStride(dim);
  std::vector<double> matrix(rows.size() * stride, 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(matrix.data() + i * stride, rows[i].data(),
                dim * sizeof(double));
  }
  QuantizedStore rebuilt =
      QuantizedStore::Build(matrix.data(), rows.size(), dim, stride);

  ASSERT_EQ(loaded->size(), rebuilt.size());
  ASSERT_EQ(loaded->dim(), rebuilt.dim());
  EXPECT_EQ(0, std::memcmp(loaded->scales().data(), rebuilt.scales().data(),
                           rebuilt.scales().size() * sizeof(double)));
  EXPECT_EQ(0,
            std::memcmp(loaded->residuals().data(), rebuilt.residuals().data(),
                        rebuilt.residuals().size() * sizeof(double)));
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(loaded->RowCodes(i).data(),
                             rebuilt.RowCodes(i).data(),
                             rebuilt.RowCodes(i).size()))
        << "codes of row " << i;
  }
  std::remove(path.c_str());
}

TEST(ColumnFileTest, WriterValidatesArguments) {
  EXPECT_EQ(ColumnFileWriter::Create(TestPath("bad"), 0).status().code(),
            StatusCode::kInvalidArgument);
  ColumnFileOptions tiny;
  tiny.page_bytes = 64;  // smaller than one 16-dim row (128 bytes)
  EXPECT_EQ(ColumnFileWriter::Create(TestPath("bad"), 16, tiny)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  ColumnFileOptions odd;
  odd.page_bytes = 1000;  // not a multiple of 64
  EXPECT_EQ(ColumnFileWriter::Create(TestPath("bad"), 4, odd).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ColumnFileTest, WrongDimensionRowIsRejected) {
  const std::string path = TestPath("wrongdim");
  auto writer = ColumnFileWriter::Create(path, 8);
  ASSERT_TRUE(writer.ok());
  std::vector<double> short_row(7, 0.5);
  EXPECT_EQ((*writer)->AppendRow(short_row).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ColumnFileTest, MetadataCapacityIsEnforced) {
  const std::string path = TestPath("metacap");
  ColumnFileOptions options;
  options.metadata_capacity = 4;
  auto writer = ColumnFileWriter::Create(path, 8, options);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->SetMetadata(std::vector<double>(5, 1.0)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE((*writer)->SetMetadata({1.0, 2.0}).ok());
  ASSERT_TRUE((*writer)->AppendRow(std::vector<double>(8, 0.25)).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  auto file = ColumnFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->metadata(), (std::vector<double>{1.0, 2.0}));
  std::remove(path.c_str());
}

// --- The corruption matrix -------------------------------------------------

class ColumnFileCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TestPath("corrupt");
    ColumnFileOptions options;
    options.page_bytes = 4096;
    options.metadata = {2.5, 1.5};
    WriteFile(path_, MakeRows(64, 16), options);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // Overwrites `len` bytes at `offset` with `byte`.
  void Clobber(uint64_t offset, size_t len, char byte) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(offset));
    std::vector<char> junk(len, byte);
    f.write(junk.data(), static_cast<std::streamsize>(len));
  }

  void Truncate(uint64_t new_size) {
    ASSERT_EQ(0, ::truncate(path_.c_str(), static_cast<off_t>(new_size)));
  }

  std::string path_;
};

TEST_F(ColumnFileCorruptionTest, BadMagicIsInvalidArgument) {
  Clobber(0, 4, 'X');
  auto file = ColumnFile::Open(path_);
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ColumnFileCorruptionTest, VersionSkewIsInvalidArgument) {
  // The version field sits right after the 8-byte magic.
  uint32_t future = 99;
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(8);
  f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  f.close();
  auto file = ColumnFile::Open(path_);
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(file.status().message().find("version skew"), std::string::npos);
}

TEST_F(ColumnFileCorruptionTest, FlippedHeaderByteIsDataLoss) {
  // Somewhere inside the count field: geometry stays plausible, checksum
  // must catch it.
  Clobber(16, 1, 0x5a);
  auto file = ColumnFile::Open(path_);
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnFileCorruptionTest, FlippedMetadataByteIsDataLoss) {
  Clobber(sizeof(FileHeader) + 3, 1, 0x5a);
  auto file = ColumnFile::Open(path_);
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnFileCorruptionTest, TruncatedDataSectionIsDataLoss) {
  Truncate(5000);  // header page survives, data pages gone
  auto file = ColumnFile::Open(path_);
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnFileCorruptionTest, TruncatedHeaderIsDataLoss) {
  Truncate(40);  // good magic, short header
  auto file = ColumnFile::Open(path_);
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnFileCorruptionTest, TruncatedQuantizedSectionIsDataLoss) {
  // Drop the tail of the file: data pages intact, qsection short.
  struct stat st;
  ASSERT_EQ(0, ::stat(path_.c_str(), &st));
  Truncate(static_cast<uint64_t>(st.st_size) - 16);
  auto file = ColumnFile::Open(path_);
  EXPECT_EQ(file.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnFileCorruptionTest, FlippedQuantizedByteIsDataLoss) {
  auto file = ColumnFile::Open(path_);
  ASSERT_TRUE(file.ok());
  const uint64_t qoff = (*file)->header().qsection_offset;
  (*file)->Close();
  Clobber(qoff + 64, 1, 0x77);
  auto reopened = ColumnFile::Open(path_);
  ASSERT_TRUE(reopened.ok());  // header is fine...
  auto quantized = (*reopened)->LoadQuantized();  // ...the section is not
  EXPECT_EQ(quantized.status().code(), StatusCode::kDataLoss);
}

TEST_F(ColumnFileCorruptionTest, NotAFileAtAllIsInvalidArgument) {
  const std::string garbage = TestPath("garbage");
  std::ofstream f(garbage, std::ios::binary);
  f << "this is not a column file, it is prose";
  f.close();
  auto file = ColumnFile::Open(garbage);
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
  std::remove(garbage.c_str());
}

TEST_F(ColumnFileCorruptionTest, EmptyFileIsInvalidArgument) {
  const std::string empty = TestPath("empty");
  std::ofstream(empty, std::ios::binary).close();
  auto file = ColumnFile::Open(empty);
  EXPECT_EQ(file.status().code(), StatusCode::kInvalidArgument);
  std::remove(empty.c_str());
}

TEST_F(ColumnFileCorruptionTest, MissingFileIsNotFound) {
  auto file = ColumnFile::Open(TestPath("never_written"));
  EXPECT_EQ(file.status().code(), StatusCode::kNotFound);
}

TEST_F(ColumnFileCorruptionTest, ReadAfterCloseIsFailedPrecondition) {
  auto file = ColumnFile::Open(path_);
  ASSERT_TRUE(file.ok());
  (*file)->Close();
  std::vector<char> page((*file)->page_bytes());
  EXPECT_EQ((*file)->ReadPage(0, page).code(),
            StatusCode::kFailedPrecondition);
  (*file)->Close();  // idempotent
}

TEST(ColumnFileTest, UnfinishedFileIsRejected) {
  const std::string path = TestPath("unfinished");
  {
    auto writer = ColumnFileWriter::Create(path, 8);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendRow(std::vector<double>(8, 1.0)).ok());
    // No Finish(): the header was never written.
  }
  auto file = ColumnFile::Open(path);
  EXPECT_FALSE(file.ok());
  std::remove(path.c_str());
}

TEST(ColumnFileTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors (64-bit).
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar", 6), 0x85944171f73967e8ull);
  // Chaining: hashing in two chunks equals hashing at once.
  const char data[] = "foobar";
  EXPECT_EQ(Fnv1a64(data + 3, 3, Fnv1a64(data, 3)), Fnv1a64(data, 6));
}

}  // namespace
}  // namespace storage
}  // namespace fuzzydb
