#include "relational/relational_source.h"

#include <gtest/gtest.h>

#include "middleware/naive.h"

namespace fuzzydb {
namespace {

class RelationalSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema = *Schema::Create(
        {{"Artist", ValueType::kString}, {"Year", ValueType::kInt64}});
    table_ = std::make_unique<Table>("cds", std::move(schema));
    auto row = [](const char* artist, int64_t year) {
      return std::vector<Value>{Value(std::string(artist)), Value(year)};
    };
    ASSERT_TRUE(table_->Insert(1, row("Beatles", 1969)).ok());
    ASSERT_TRUE(table_->Insert(2, row("Kinks", 1969)).ok());
    ASSERT_TRUE(table_->Insert(3, row("Beatles", 1965)).ok());
    ASSERT_TRUE(table_->Insert(4, row("Who", 1971)).ok());
  }

  Predicate BeatlesPredicate() {
    return *Predicate::Create(table_->schema(), "Artist", CompareOp::kEq,
                              Value(std::string("Beatles")));
  }

  std::unique_ptr<Table> table_;
};

TEST_F(RelationalSourceTest, GradesAreZeroOrOne) {
  Result<RelationalSource> src =
      RelationalSource::Create(table_.get(), BeatlesPredicate());
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->Size(), 4u);
  EXPECT_EQ(src->num_matches(), 2u);
  EXPECT_DOUBLE_EQ(src->RandomAccess(1), 1.0);
  EXPECT_DOUBLE_EQ(src->RandomAccess(2), 0.0);
  EXPECT_DOUBLE_EQ(src->RandomAccess(3), 1.0);
  EXPECT_DOUBLE_EQ(src->RandomAccess(999), 0.0);
}

TEST_F(RelationalSourceTest, SortedAccessStreamsMatchesFirst) {
  Result<RelationalSource> src =
      RelationalSource::Create(table_.get(), BeatlesPredicate());
  ASSERT_TRUE(src.ok());
  std::vector<GradedObject> stream;
  while (auto next = src->NextSorted()) stream.push_back(*next);
  ASSERT_EQ(stream.size(), 4u);
  EXPECT_EQ(stream[0].id, 1u);
  EXPECT_DOUBLE_EQ(stream[0].grade, 1.0);
  EXPECT_EQ(stream[1].id, 3u);
  EXPECT_DOUBLE_EQ(stream[1].grade, 1.0);
  EXPECT_DOUBLE_EQ(stream[2].grade, 0.0);
  EXPECT_DOUBLE_EQ(stream[3].grade, 0.0);
}

TEST_F(RelationalSourceTest, UsesIndexForEqualityWhenAvailable) {
  ASSERT_TRUE(table_->CreateIndex("Artist").ok());
  Result<RelationalSource> indexed =
      RelationalSource::Create(table_.get(), BeatlesPredicate());
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(indexed->used_index());
  EXPECT_EQ(indexed->num_matches(), 2u);

  // Range predicates fall back to scanning even with an index present.
  Predicate range = *Predicate::Create(table_->schema(), "Year",
                                       CompareOp::kGe, Value(int64_t{1969}));
  Result<RelationalSource> scanned =
      RelationalSource::Create(table_.get(), std::move(range));
  ASSERT_TRUE(scanned.ok());
  EXPECT_FALSE(scanned->used_index());
  EXPECT_EQ(scanned->num_matches(), 3u);
}

TEST_F(RelationalSourceTest, IndexAndScanProduceIdenticalSources) {
  Result<RelationalSource> scan =
      RelationalSource::Create(table_.get(), BeatlesPredicate());
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(table_->CreateIndex("Artist").ok());
  Result<RelationalSource> indexed =
      RelationalSource::Create(table_.get(), BeatlesPredicate());
  ASSERT_TRUE(indexed.ok());
  scan->RestartSorted();
  indexed->RestartSorted();
  for (;;) {
    auto a = scan->NextSorted();
    auto b = indexed->NextSorted();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->id, b->id);
    EXPECT_DOUBLE_EQ(a->grade, b->grade);
  }
}

TEST_F(RelationalSourceTest, AtLeastRespectsThreshold) {
  Result<RelationalSource> src =
      RelationalSource::Create(table_.get(), BeatlesPredicate());
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->AtLeast(0.5).size(), 2u);
  EXPECT_EQ(src->AtLeast(0.0).size(), 4u);
}

TEST_F(RelationalSourceTest, NameDescribesPredicate) {
  Result<RelationalSource> src =
      RelationalSource::Create(table_.get(), BeatlesPredicate());
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->name(), "cds:Artist='Beatles'");
}

TEST_F(RelationalSourceTest, RejectsNullTable) {
  EXPECT_FALSE(RelationalSource::Create(nullptr, BeatlesPredicate()).ok());
}

}  // namespace
}  // namespace fuzzydb
