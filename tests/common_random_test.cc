#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace fuzzydb {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRoughlyUniform) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  // Mean of U[0,1) is 0.5; tolerance ~5 sigma of the sample mean.
  EXPECT_NEAR(sum / n, 0.5, 5.0 * 0.2887 / std::sqrt(n));
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo = hit_lo || v == -3;
    hit_hi = hit_hi || v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ZipfStaysInRangeAndSkews) {
  Rng rng(17);
  const uint64_t n = 1000;
  int ones = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.NextZipf(n, 1.2);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, n);
    if (v == 1) ++ones;
  }
  // Rank 1 should dominate: far more than the uniform share of 20.
  EXPECT_GT(ones, 1000);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, RandomPermutationIsPermutation) {
  Rng rng(23);
  std::vector<size_t> p = RandomPermutation(&rng, 100);
  std::sort(p.begin(), p.end());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(p[i], i);
}

TEST(RngTest, UniformGradesSizeAndRange) {
  Rng rng(29);
  std::vector<double> g = UniformGrades(&rng, 500);
  ASSERT_EQ(g.size(), 500u);
  for (double x : g) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

}  // namespace
}  // namespace fuzzydb
