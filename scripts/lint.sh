#!/usr/bin/env bash
# Static-analysis gate: clang-tidy over src/ plus a portable check set.
#
#   scripts/lint.sh [--strict]
#
# Two layers:
#   1. Portable checks (always run, no toolchain needed): include-guard
#      naming, banned patterns, file hygiene. These keep the gate meaningful
#      on machines without clang-tidy.
#   2. clang-tidy (when available, or when --strict / FUZZYDB_LINT_STRICT=1
#      demands it): the .clang-tidy check set over every src/ translation
#      unit, driven from compile_commands.json. Zero findings required.
#
# CI runs with --strict so a missing tool can never silently pass.
set -euo pipefail

cd "$(dirname "$0")/.."

STRICT="${FUZZYDB_LINT_STRICT:-0}"
if [ "${1:-}" = "--strict" ]; then STRICT=1; fi
JOBS="$(nproc 2>/dev/null || echo 2)"
FAIL=0

# ---------------------------------------------------------------------------
# Layer 1: portable checks.

echo "== lint: portable checks =="

# Include guards must follow FUZZYDB_<PATH>_H_ (matching the file path).
while IFS= read -r header; do
  rel="${header#src/}"
  want="FUZZYDB_$(echo "${rel%.h}" | tr '[:lower:]/' '[:upper:]_')_H_"
  if ! grep -q "#ifndef ${want}" "$header"; then
    echo "lint: $header: include guard should be ${want}"
    FAIL=1
  fi
done < <(find src -name '*.h' | sort)

# Banned patterns in library code.
if grep -rn --include='*.h' --include='*.cc' 'using namespace std' src; then
  echo "lint: 'using namespace std' is banned in src/"
  FAIL=1
fi
if grep -rn --include='*.h' 'using namespace' src; then
  echo "lint: namespace-level 'using namespace' is banned in headers"
  FAIL=1
fi
if grep -rln --include='*.h' --include='*.cc' $'\t' src tests bench; then
  echo "lint: tab characters found (2-space indent is the house style)"
  FAIL=1
fi
# <iostream> in a header drags the global-stream constructors into every TU;
# .cc files that really print (the sim harness) may include it directly.
if grep -rn --include='*.h' '#include <iostream>' src; then
  echo "lint: src/ headers must not include <iostream> (use <iosfwd>)"
  FAIL=1
fi
# Naked std synchronization primitives bypass the capability-annotated
# layer (common/sync.h) and with it the whole -Wthread-safety gate: new
# code must use Mutex / MutexLock / CondVar so GUARDED_BY/REQUIRES
# contracts stay provable. Only sync.h itself may name the std types.
if grep -rn --include='*.h' --include='*.cc' \
     'std::mutex\|std::lock_guard\|std::unique_lock\|std::scoped_lock\|std::condition_variable\|std::shared_mutex' \
     src | grep -v '^src/common/sync\.h:'; then
  echo "lint: naked std sync primitives in src/ — use the annotated" \
       "Mutex/MutexLock/CondVar layer from common/sync.h"
  FAIL=1
fi

if [ "$FAIL" -ne 0 ]; then
  echo "lint: portable checks FAILED"
  exit 1
fi
echo "lint: portable checks OK"

# ---------------------------------------------------------------------------
# Layer 2: clang-tidy.

TIDY=""
for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
            clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then TIDY="$cand"; break; fi
done

if [ -z "$TIDY" ]; then
  if [ "$STRICT" = "1" ]; then
    echo "lint: clang-tidy not found but strict mode demands it" >&2
    exit 1
  fi
  echo "lint: clang-tidy not found; skipping layer 2 (CI runs it strictly)"
  exit 0
fi

echo "== lint: $($TIDY --version | head -n 1) =="

BUILD_DIR="build-lint"
cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# Every library translation unit; tests/bench use gtest/benchmark macros
# that the check set is not tuned for.
mapfile -t FILES < <(find src -name '*.cc' | sort)

if ! "$TIDY" -p "$BUILD_DIR" --quiet "${FILES[@]}"; then
  echo "lint: clang-tidy FAILED (findings above)"
  exit 1
fi
echo "lint: clang-tidy OK (${#FILES[@]} files, zero findings)"
