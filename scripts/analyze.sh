#!/usr/bin/env bash
# Deep static-analysis gate (DESIGN §3i): the Clang Static Analyzer over
# every library translation unit, plus the thread-safety compile-fail
# harness proving the -Wthread-safety gate fires.
#
#   scripts/analyze.sh [--strict]
#
# Three layers:
#   1. Compile-fail harness (tests/thread_safety/run_compile_fail.sh):
#      negative snippets MUST fail under -Wthread-safety -Werror, the
#      positive control must pass.
#   2. Clang build with -Wthread-safety -Werror: the capability annotations
#      on the sync layer (common/sync.h) are checked across the whole tree,
#      not just the snippets.
#   3. Clang Static Analyzer (scan-build when available, `clang++ --analyze`
#      otherwise) with the core, deadcode, and cplusplus checker packages
#      over src/. Zero findings required.
#
# Every layer needs a Clang toolchain. Without one the script skips with a
# loud message (exit 0) so local GCC-only machines stay usable; --strict or
# FUZZYDB_ANALYZE_STRICT=1 (CI) turns any skip into a failure so a missing
# tool can never silently pass.
set -euo pipefail

cd "$(dirname "$0")/.."

STRICT="${FUZZYDB_ANALYZE_STRICT:-0}"
if [ "${1:-}" = "--strict" ]; then STRICT=1; fi
JOBS="$(nproc 2>/dev/null || echo 2)"
ROOT="$(pwd)"

find_tool() {
  local base="$1"
  for cand in "${base}" "${base}-21" "${base}-20" "${base}-19" "${base}-18" \
              "${base}-17" "${base}-16" "${base}-15" "${base}-14"; do
    if command -v "${cand}" >/dev/null 2>&1; then
      echo "${cand}"
      return 0
    fi
  done
  return 1
}

CLANGXX="${FUZZYDB_CLANGXX:-}"
if [ -z "${CLANGXX}" ]; then CLANGXX="$(find_tool clang++ || true)"; fi
if [ -z "${CLANGXX}" ]; then
  if [ "${STRICT}" = "1" ]; then
    echo "analyze: no clang++ found but strict mode demands it" >&2
    exit 1
  fi
  echo "analyze: no clang++ found; skipping (CI analyze leg is strict)"
  exit 0
fi
CLANGC="${CLANGXX/clang++/clang}"
command -v "${CLANGC}" >/dev/null 2>&1 || CLANGC="${CLANGXX}"

echo "== analyze: $(${CLANGXX} --version | head -n 1) =="

# ---------------------------------------------------------------------------
# Layer 1: the compile-fail harness (strictness forwarded via env).

FUZZYDB_ANALYZE_STRICT="${STRICT}" FUZZYDB_CLANGXX="${CLANGXX}" \
  bash tests/thread_safety/run_compile_fail.sh "${ROOT}"

# ---------------------------------------------------------------------------
# Layer 2: whole-tree -Wthread-safety -Werror under Clang. CHECKIN already
# adds -Werror; the CMake toolchain check adds -Wthread-safety on Clang.

echo "== analyze: clang build with -Wthread-safety -Werror =="
cmake -B build-analyze -S . \
  -DCMAKE_C_COMPILER="${CLANGC}" -DCMAKE_CXX_COMPILER="${CLANGXX}" \
  -DFUZZYDB_WARNING_LEVEL=CHECKIN >/dev/null
cmake --build build-analyze -j "${JOBS}"
echo "analyze: -Wthread-safety clean"

# ---------------------------------------------------------------------------
# Layer 3: Clang Static Analyzer, zero findings required. scan-build wraps
# a fresh build (its wrappers intercept every compile); without it, fall
# back to `clang++ --analyze` per library TU — src/ needs no generated
# headers or third-party deps, so bare include flags suffice.

CHECKERS=(-enable-checker core -enable-checker deadcode
          -enable-checker cplusplus)
SCAN_BUILD="$(find_tool scan-build || true)"
if [ -n "${SCAN_BUILD}" ]; then
  echo "== analyze: ${SCAN_BUILD} (core + deadcode + cplusplus) =="
  rm -rf build-scan
  # Configure under scan-build too (the wrappers must land in the CMake
  # cache) but gate only the build step: --status-bugs on the configure
  # probes would fail on CMake's own feature-test snippets.
  "${SCAN_BUILD}" "${CHECKERS[@]}" --use-cc="${CLANGC}" \
    --use-c++="${CLANGXX}" \
    cmake -B build-scan -S . >/dev/null
  "${SCAN_BUILD}" "${CHECKERS[@]}" --use-cc="${CLANGC}" \
    --use-c++="${CLANGXX}" --status-bugs \
    cmake --build build-scan -j "${JOBS}"
  echo "analyze: scan-build reported zero findings"
else
  echo "== analyze: clang++ --analyze fallback (core + deadcode +" \
       "cplusplus) =="
  # `--analyze` exits 0 even when it reports: treat any diagnostic output
  # as a finding, so "zero findings" means literally silent.
  FAIL=0
  while IFS= read -r tu; do
    if ! out="$("${CLANGXX}" --analyze --analyzer-output text \
         -Xclang -analyzer-checker=core,deadcode,cplusplus \
         -std=c++20 "-I${ROOT}/src" "${tu}" 2>&1)" || [ -n "${out}" ]; then
      echo "analyze: findings in ${tu}:" >&2
      echo "${out}" >&2
      FAIL=1
    fi
  done < <(find src -name '*.cc' | sort)
  if [ "${FAIL}" -ne 0 ]; then
    echo "analyze: Clang Static Analyzer FAILED (findings above)" >&2
    exit 1
  fi
  echo "analyze: clang++ --analyze reported zero findings"
fi

echo "analyze: OK"
