#!/usr/bin/env bash
# clang-format helper (non-gating; .clang-format carries the style).
#
#   scripts/format.sh          reformat src/ tests/ bench/ examples/ in place
#   scripts/format.sh --check  report files that differ; exit 0 regardless
#                              (advisory — formatting never blocks a build)
set -euo pipefail

cd "$(dirname "$0")/.."

FMT=""
for cand in clang-format clang-format-19 clang-format-18 clang-format-17 \
            clang-format-16 clang-format-15 clang-format-14; do
  if command -v "$cand" >/dev/null 2>&1; then FMT="$cand"; break; fi
done
if [ -z "$FMT" ]; then
  echo "format: clang-format not found; nothing to do"
  exit 0
fi

mapfile -t FILES < <(find src tests bench examples \
  \( -name '*.h' -o -name '*.cc' \) | sort)

if [ "${1:-}" = "--check" ]; then
  DIFFS=0
  for f in "${FILES[@]}"; do
    if ! "$FMT" --dry-run -Werror "$f" >/dev/null 2>&1; then
      echo "format: would reformat $f"
      DIFFS=$((DIFFS + 1))
    fi
  done
  echo "format: ${DIFFS} of ${#FILES[@]} files differ from .clang-format"
  exit 0
fi

"$FMT" -i "${FILES[@]}"
echo "format: reformatted ${#FILES[@]} files"
