#!/usr/bin/env bash
# Build-and-test gate for local use and CI.
#
#   scripts/verify.sh [plain|asan|tsan|checks|lint|all]
#
#   plain   Release build at CHECKIN warning level (-Werror), full ctest
#           suite (the tier-1 gate).
#   asan    AddressSanitizer + UBSan build, full ctest suite.
#   tsan    ThreadSanitizer build; runs the ctest label `concurrency`
#           (thread pool, sharded kernels, embedding layer, parallel
#           middleware, schedule fuzzers) with halt_on_error and a retry
#           only for timeouts — data-race findings are never retried away.
#   checks  FUZZYDB_CHECKS=ON build: paper-invariant contract macros compiled
#           in and the src/analysis property auditors exercised by the full
#           suite (analysis_contract_test runs its instrumentation leg).
#   lint    scripts/lint.sh (portable checks + clang-tidy when available).
#   all     plain + asan + tsan + checks + lint (default).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-all}"

configure_and_test() {
  local build_dir="$1"; shift
  local test_filter="$1"; shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  if [ -n "${test_filter}" ]; then
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -R "${test_filter}"
  else
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
  fi
}

case "${MODE}" in
  plain)
    configure_and_test build-verify "" \
      -DFUZZYDB_WARNING_LEVEL=CHECKIN ;;
  asan)
    configure_and_test build-asan "" -DFUZZYDB_SANITIZE=ON ;;
  tsan)
    cmake -B build-tsan -S . -DFUZZYDB_TSAN=ON
    cmake --build build-tsan -j "${JOBS}"
    TSAN_OPTIONS=halt_on_error=1 ctest --test-dir build-tsan \
      --output-on-failure -j "${JOBS}" -L concurrency \
      --repeat after-timeout:3 ;;
  checks)
    configure_and_test build-checks "" \
      -DFUZZYDB_CHECKS=ON -DFUZZYDB_WARNING_LEVEL=CHECKIN ;;
  lint)
    scripts/lint.sh ;;
  all)
    "$0" plain
    "$0" asan
    "$0" tsan
    "$0" checks
    "$0" lint ;;
  *)
    echo "usage: $0 [plain|asan|tsan|checks|lint|all]" >&2
    exit 2 ;;
esac

echo "verify ${MODE}: OK"
