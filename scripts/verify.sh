#!/usr/bin/env bash
# Build-and-test gate for local use and CI.
#
#   scripts/verify.sh [plain|asan|tsan|checks|lint|simd|all]
#
#   plain   Release build at CHECKIN warning level (-Werror), full ctest
#           suite (the tier-1 gate).
#   asan    AddressSanitizer + UBSan build, full ctest suite.
#   tsan    ThreadSanitizer build; runs the ctest label `concurrency`
#           (thread pool, sharded kernels, embedding layer, parallel
#           middleware, schedule fuzzers) with halt_on_error and a retry
#           only for timeouts — data-race findings are never retried away.
#   checks  FUZZYDB_CHECKS=ON build: paper-invariant contract macros compiled
#           in and the src/analysis property auditors exercised by the full
#           suite (analysis_contract_test runs its instrumentation leg).
#   lint    scripts/lint.sh (portable checks + clang-tidy when available).
#   analyze scripts/analyze.sh: thread-safety compile-fail harness, a Clang
#           -Wthread-safety -Werror build of the whole tree, and the Clang
#           Static Analyzer (core/deadcode/cplusplus, zero findings). Skips
#           loudly without a Clang toolchain; CI runs it strictly.
#   simd    Native-arch CHECKIN build; reruns the kernel-sensitive tests
#           (simd dispatch, quantized tier, embedding, sharded kernels,
#           R-tree driver source, analysis contracts) once per
#           FUZZYDB_SIMD level in {scalar,
#           avx2, avx512}. The dispatcher clamps a forced level to what the
#           host supports, so every leg runs everywhere and the widest ISA
#           the hardware has is always exercised — bit-identical answers
#           are asserted inside the tests themselves.
#   server  Serving-layer gate: ThreadSanitizer build, then the query-server
#           suite (server_*, ticket, thread-pool, schedule fuzzers) under
#           halt_on_error with timeout-only retries, then a FUZZYDB_SMOKE=1
#           pass of exp22_query_server (open-loop harness end to end, zero
#           mismatches asserted inside the bench, no JSON write).
#   storage Out-of-core gate (DESIGN §3k): an ASan+UBSan build running the
#           storage suite with FUZZYDB_STORAGE_STRESS=1 (widened paging-
#           equivalence sweep, handle-lifetime and corruption tests under
#           the sanitizer), then TSan on the buffer pool and paged-store
#           concurrency labels, then a FUZZYDB_SMOKE=1 pass of
#           exp23_out_of_core (bounded-RSS paging end to end; warm int8
#           queries asserted to read zero disk bytes inside the bench).
#   bench   Native-arch Release build; runs the perf-trajectory benches
#           (exp16, exp18, exp19, exp21, exp22, exp23) so their BENCH_*.json land in the repo
#           root. Not a gate: on a 1-hardware-thread host it warns loudly
#           and the reports carry "contention_only": true — the guarded
#           writer refuses to overwrite a multi-core report with one.
#   all     plain + asan + tsan + checks + simd + server + storage + lint +
#           analyze (default; bench is opt-in).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-all}"

configure_and_test() {
  local build_dir="$1"; shift
  local test_filter="$1"; shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  if [ -n "${test_filter}" ]; then
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -R "${test_filter}"
  else
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
  fi
}

case "${MODE}" in
  plain)
    configure_and_test build-verify "" \
      -DFUZZYDB_WARNING_LEVEL=CHECKIN ;;
  asan)
    configure_and_test build-asan "" -DFUZZYDB_SANITIZE=ON ;;
  tsan)
    cmake -B build-tsan -S . -DFUZZYDB_TSAN=ON
    cmake --build build-tsan -j "${JOBS}"
    TSAN_OPTIONS=halt_on_error=1 ctest --test-dir build-tsan \
      --output-on-failure -j "${JOBS}" -L concurrency \
      --repeat after-timeout:3 ;;
  checks)
    configure_and_test build-checks "" \
      -DFUZZYDB_CHECKS=ON -DFUZZYDB_WARNING_LEVEL=CHECKIN ;;
  lint)
    scripts/lint.sh ;;
  analyze)
    scripts/analyze.sh ;;
  simd)
    cmake -B build-simd -S . -DFUZZYDB_NATIVE_ARCH=ON \
      -DFUZZYDB_WARNING_LEVEL=CHECKIN
    cmake --build build-simd -j "${JOBS}"
    for level in scalar avx2 avx512; do
      echo "== FUZZYDB_SIMD=${level} (clamped to host support) =="
      FUZZYDB_SIMD="${level}" ctest --test-dir build-simd \
        --output-on-failure -j "${JOBS}" \
        -R 'simd|quantized|embedding|parallel_kernel|aligned_buffer|analysis|rtree'
    done ;;
  server)
    cmake -B build-server -S . -DFUZZYDB_TSAN=ON
    cmake --build build-server -j "${JOBS}"
    TSAN_OPTIONS=halt_on_error=1 ctest --test-dir build-server \
      --output-on-failure -j "${JOBS}" \
      -R 'server_|fuzz_test|thread_pool|ticket' \
      --repeat after-timeout:3
    cmake --build build-server -j "${JOBS}" --target exp22_query_server
    FUZZYDB_SMOKE=1 ./build-server/bench/exp22_query_server \
      --benchmark_min_time=0.01 ;;
  storage)
    cmake -B build-asan -S . -DFUZZYDB_SANITIZE=ON
    cmake --build build-asan -j "${JOBS}"
    FUZZYDB_STORAGE_STRESS=1 ctest --test-dir build-asan \
      --output-on-failure -j "${JOBS}" -R 'storage_'
    cmake -B build-tsan -S . -DFUZZYDB_TSAN=ON
    cmake --build build-tsan -j "${JOBS}"
    TSAN_OPTIONS=halt_on_error=1 ctest --test-dir build-tsan \
      --output-on-failure -j "${JOBS}" -R 'storage_' -L concurrency \
      --repeat after-timeout:3
    cmake --build build-asan -j "${JOBS}" --target exp23_out_of_core
    FUZZYDB_SMOKE=1 ./build-asan/bench/exp23_out_of_core \
      --benchmark_min_time=0.01 ;;
  bench)
    HW="$(nproc 2>/dev/null || echo 1)"
    if [ "${HW}" -le 1 ]; then
      echo "WARNING: 1 hardware thread — bench speedups are contention-only;" \
           "reports will carry \"contention_only\": true and will not" \
           "overwrite multi-core BENCH_*.json files." >&2
    fi
    cmake -B build-native -S . -DFUZZYDB_NATIVE_ARCH=ON
    cmake --build build-native -j "${JOBS}" --target \
      exp16_embedding_cascade exp18_parallel_middleware \
      exp19_adaptive_parallel exp21_rtree_driver exp22_query_server \
      exp23_out_of_core
    ./build-native/bench/exp16_embedding_cascade \
      --benchmark_min_time=0.01
    ./build-native/bench/exp18_parallel_middleware \
      --benchmark_min_time=0.01
    ./build-native/bench/exp19_adaptive_parallel \
      --benchmark_min_time=0.01
    ./build-native/bench/exp21_rtree_driver \
      --benchmark_min_time=0.01
    ./build-native/bench/exp22_query_server \
      --benchmark_min_time=0.01
    ./build-native/bench/exp23_out_of_core \
      --benchmark_min_time=0.01 ;;
  all)
    "$0" plain
    "$0" asan
    "$0" tsan
    "$0" checks
    "$0" simd
    "$0" server
    "$0" storage
    "$0" lint
    "$0" analyze ;;
  *)
    echo "usage: $0 [plain|asan|tsan|checks|lint|analyze|simd|server|storage|bench|all]" >&2
    exit 2 ;;
esac

echo "verify ${MODE}: OK"
