#!/usr/bin/env bash
# Build-and-test gate for local use and CI.
#
#   scripts/verify.sh [plain|asan|tsan|all]
#
#   plain  Release build, full ctest suite (the tier-1 gate).
#   asan   AddressSanitizer + UBSan build, full ctest suite.
#   tsan   ThreadSanitizer build; runs the concurrency-relevant tests
#          (thread pool, sharded kernels, embedding layer, precompute).
#   all    plain + asan + tsan (default).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${1:-all}"

# Note: FUZZYDB_WARNING_LEVEL stays at PRODUCTION — gcc 12 emits a
# -Wrestrict false positive inside gtest's parameterized-name generation
# (middleware_combined_test.cc), so CHECKIN/-Werror cannot gate CI yet.
configure_and_test() {
  local build_dir="$1"; shift
  local test_filter="$1"; shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "${JOBS}"
  if [ -n "${test_filter}" ]; then
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -R "${test_filter}"
  else
    ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
  fi
}

case "${MODE}" in
  plain)
    configure_and_test build-verify "" ;;
  asan)
    configure_and_test build-asan "" -DFUZZYDB_SANITIZE=ON ;;
  tsan)
    configure_and_test build-tsan \
      "thread_pool|parallel_kernel|embedding|qbic|image_store" \
      -DFUZZYDB_TSAN=ON ;;
  all)
    "$0" plain
    "$0" asan
    "$0" tsan ;;
  *)
    echo "usage: $0 [plain|asan|tsan|all]" >&2
    exit 2 ;;
esac

echo "verify ${MODE}: OK"
