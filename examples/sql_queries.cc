// Tour of the SQL-ish surface (paper §6 suggests an SQL-like form, as
// Garlic used): every clause — similarity and exact atoms, AND/OR/NOT,
// USING (scoring rule), WEIGHTS (Fagin–Wimmers sliders), VIA (algorithm
// choice) — executed over synthetic subsystems, with the chosen plan and
// access cost printed for each statement.

#include <iostream>

#include "catalog/catalog.h"
#include "common/random.h"
#include "middleware/vector_source.h"
#include "sql/interpreter.h"

using namespace fuzzydb;

int main() {
  // Three graded attributes over a 2000-object universe.
  Rng rng(77);
  Catalog catalog;
  for (const char* spec : {"Color:red", "Shape:round", "Texture:smooth"}) {
    std::string attribute(spec, std::string(spec).find(':'));
    std::string target(std::string(spec).substr(attribute.size() + 1));
    std::vector<GradedObject> grades;
    for (ObjectId id = 1; id <= 2000; ++id) {
      grades.push_back({id, rng.NextDouble()});
    }
    Result<VectorSource> src =
        VectorSource::Create(std::move(grades), attribute + "~" + target);
    if (!src.ok()) {
      std::cerr << src.status().ToString() << "\n";
      return 1;
    }
    Status st = catalog.RegisterSource(
        attribute, target,
        std::make_unique<VectorSource>(std::move(*src)));
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  const char* statements[] = {
      // Standard fuzzy conjunction; the planner picks TA.
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND Shape ~ 'round'",
      // Force Fagin's A0 and the naive baseline for comparison.
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND Shape ~ 'round' "
      "VIA fagin",
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND Shape ~ 'round' "
      "VIA naive",
      // Pure disjunction: the m*k shortcut fires automatically.
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' OR Shape ~ 'round'",
      // A different t-norm and a three-way conjunction.
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND Shape ~ 'round' "
      "AND Texture ~ 'smooth' USING product",
      // Sliders: color matters three times as much as shape.
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND Shape ~ 'round' "
      "WEIGHTS (3, 1)",
      // Negation: only the naive plan is correct, and the planner knows.
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND NOT "
      "Shape ~ 'round'",
      // Nested combination evaluated as one composite monotone rule.
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND "
      "(Shape ~ 'round' OR Texture ~ 'smooth')",
      // No random access allowed.
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND Shape ~ 'round' "
      "VIA nra",
      // EXPLAIN: plan only, never executed.
      "EXPLAIN SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND "
      "Shape ~ 'round'",
      "EXPLAIN SELECT TOP 3 FROM objects WHERE Color ~ 'red' OR "
      "Shape ~ 'round'",
  };

  for (const char* sql : statements) {
    std::cout << "\n> " << sql << "\n";
    Result<SelectStatement> parsed = ParseSelect(sql);
    if (parsed.ok() && parsed->explain) {
      Result<PlanChoice> plan = ExplainSelect(sql, &catalog);
      if (!plan.ok()) {
        std::cout << "error: " << plan.status().ToString() << "\n";
        continue;
      }
      std::cout << FormatPlan(*plan);
      continue;
    }
    Result<ExecutionResult> r = RunSelect(sql, &catalog);
    if (!r.ok()) {
      std::cout << "error: " << r.status().ToString() << "\n";
      continue;
    }
    std::cout << FormatResult(*r);
  }

  // The same planner under a cost model where random access costs 50x a
  // sorted access (paper §4: "a more realistic cost measure").
  std::cout << "\n> EXPLAIN ... with random access charged 50x\n";
  CostModel pricey;
  pricey.random_unit = 50.0;
  Result<PlanChoice> plan = ExplainSelect(
      "SELECT TOP 3 FROM objects WHERE Color ~ 'red' AND Shape ~ 'round'",
      &catalog, pricey);
  if (plan.ok()) std::cout << FormatPlan(*plan);
  return 0;
}
