// Content-based image search (paper §2): atomic similarity queries over a
// QBIC-like collection, demonstrating
//   - the quadratic-form color distance and its eigen distance-bounding
//     filter (no false dismissals, far fewer full distance evaluations);
//   - shape retrieval via turning functions;
//   - a multimedia conjunction (Color AND Shape) answered by TA.

#include <iostream>

#include "image/bounding.h"
#include "image/indexed_search.h"
#include "image/precompute.h"
#include "image/qbic_source.h"
#include "middleware/threshold.h"

using namespace fuzzydb;

int main() {
  ImageStoreOptions options;
  options.num_images = 1500;
  options.palette_size = 64;
  options.seed = 2026;
  Result<ImageStore> store_result = ImageStore::Generate(options);
  if (!store_result.ok()) {
    std::cerr << store_result.status().ToString() << "\n";
    return 1;
  }
  ImageStore store = std::move(*store_result);
  const QuadraticFormDistance& qfd = store.color_distance();

  // --- 1. "images whose color is close to red", with and without the
  // distance-bounding filter. ---
  Histogram red = TargetHistogram(store.palette(), {1.0, 0.1, 0.1});
  std::vector<Histogram> histograms;
  for (const ImageRecord& rec : store.images()) {
    histograms.push_back(rec.histogram);
  }

  Result<EigenFilter> filter = EigenFilter::Create(qfd, 3);
  if (!filter.ok()) {
    std::cerr << filter.status().ToString() << "\n";
    return 1;
  }
  FilteredSearchStats stats;
  auto top = FilteredKnn(qfd, *filter, histograms, red, 5, &stats);
  if (!top.ok()) {
    std::cerr << top.status().ToString() << "\n";
    return 1;
  }
  std::cout << "top-5 reddest covers (filtered search):\n";
  for (const auto& [idx, dist] : *top) {
    std::cout << "  image " << store.image(idx).id << "  color distance "
              << dist << "\n";
  }
  std::cout << "full quadratic-form evaluations: "
            << stats.full_distance_computations << " of "
            << histograms.size() << " (the dimension-3 summary pruned the "
            << "rest; guaranteed no false dismissals)\n";

  // The same search through the GEMINI pipeline: an R-tree over the
  // summaries replaces even the linear pass over summary vectors.
  Result<GeminiIndex> gemini =
      GeminiIndex::Build(&qfd, *filter, &histograms);
  if (!gemini.ok()) {
    std::cerr << gemini.status().ToString() << "\n";
    return 1;
  }
  FilteredSearchStats gstats;
  auto gtop = gemini->Knn(red, 5, &gstats);
  if (!gtop.ok()) {
    std::cerr << gtop.status().ToString() << "\n";
    return 1;
  }
  std::cout << "same answers via the R-tree-indexed summaries: "
            << gstats.bound_computations << " summary evaluations instead "
            << "of " << histograms.size() << "\n";

  // --- 2. "images shaped like a hexagon" via turning functions. ---
  Result<QbicShapeSource> shape =
      QbicShapeSource::Create(&store, Polygon::Regular(6), "Shape~hexagon");
  if (!shape.ok()) {
    std::cerr << shape.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\ntop-5 most hexagonal covers:\n";
  for (int i = 0; i < 5; ++i) {
    std::optional<GradedObject> next = shape->NextSorted();
    if (!next.has_value()) break;
    std::cout << "  image " << next->id << "  shape grade " << next->grade
              << "\n";
  }
  shape->RestartSorted();

  // --- 3. The fuzzy conjunction (Color~red AND Shape~hexagon) via TA. ---
  Result<QbicColorSource> color =
      QbicColorSource::Create(&store, red, "Color~red");
  if (!color.ok()) {
    std::cerr << color.status().ToString() << "\n";
    return 1;
  }
  std::vector<GradedSource*> sources{&*color, &*shape};
  ScoringRulePtr rule = MinRule();
  Result<TopKResult> conj = ThresholdTopK(sources, *rule, 5);
  if (!conj.ok()) {
    std::cerr << conj.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\ntop-5 of (Color~red AND Shape~hexagon) under min, via "
               "TA:\n";
  for (const GradedObject& g : conj->items) {
    std::cout << "  image " << g.id << "  grade " << g.grade << "\n";
  }
  std::cout << "access cost: " << conj->cost.total() << " (vs "
            << 2 * store.size() << " for the naive full scan)\n";
  return 0;
}
