// Quickstart: the smallest end-to-end use of the library.
//
// Two subsystems grade five objects under two atomic queries; Fagin's
// algorithm finds the top answers of the fuzzy conjunction while counting
// what it cost in the paper's access model.

#include <iostream>

#include "middleware/fagin.h"
#include "middleware/vector_source.h"

using namespace fuzzydb;

int main() {
  // A "color" subsystem and a "shape" subsystem, each a graded set:
  // (object id, grade in [0,1]).
  Result<VectorSource> color = VectorSource::Create(
      {{1, 0.9}, {2, 0.8}, {3, 0.3}, {4, 0.6}, {5, 0.1}}, "Color~red");
  Result<VectorSource> shape = VectorSource::Create(
      {{1, 0.2}, {2, 0.7}, {3, 0.9}, {4, 0.5}, {5, 0.95}}, "Shape~round");
  if (!color.ok() || !shape.ok()) {
    std::cerr << "source setup failed\n";
    return 1;
  }

  // Top-3 of (Color='red') AND (Shape='round') under the standard fuzzy
  // conjunction (min), via Fagin's algorithm A0.
  std::vector<GradedSource*> sources{&*color, &*shape};
  ScoringRulePtr rule = MinRule();
  Result<TopKResult> top = FaginTopK(sources, *rule, 3);
  if (!top.ok()) {
    std::cerr << top.status().ToString() << "\n";
    return 1;
  }

  std::cout << "top-3 of (Color='red' AND Shape='round') under min:\n";
  for (const GradedObject& g : top->items) {
    std::cout << "  object " << g.id << "  grade " << g.grade << "\n";
  }
  std::cout << "database access cost: " << top->cost.sorted << " sorted + "
            << top->cost.random << " random = " << top->cost.total() << "\n";
  return 0;
}
