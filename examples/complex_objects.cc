// Complex objects and the join operator (paper §4.2): Advertisements whose
// subobjects are AdPhotos — some photos shared between ads — queried for
// "advertisements with a red AdPhoto appearing in an expensive slot".
// Demonstrates SubobjectSource (component -> parent grade lifting) and
// TopKJoinSource (A0 as a composable, lazy join operator).

#include <iostream>

#include "catalog/subobject.h"
#include "image/qbic_source.h"
#include "middleware/cost.h"
#include "middleware/join.h"
#include "middleware/vector_source.h"

using namespace fuzzydb;

int main() {
  // --- Photo library: 300 synthetic images with ids 1000+. ---
  ImageStoreOptions options;
  options.num_images = 300;
  options.palette_size = 27;
  options.first_id = 1000;
  options.seed = 99;
  Result<ImageStore> photos_result = ImageStore::Generate(options);
  if (!photos_result.ok()) {
    std::cerr << photos_result.status().ToString() << "\n";
    return 1;
  }
  ImageStore photos = std::move(*photos_result);

  // --- 100 advertisements (ids 1..100), each with 2-4 photos; every third
  // photo is shared with the previous ad (the §4.2 sharing issue). ---
  SubobjectMapping ads;
  Rng rng(2026);
  size_t next_photo = 0;
  for (ObjectId ad = 1; ad <= 100; ++ad) {
    size_t count = 2 + rng.NextBounded(3);
    for (size_t p = 0; p < count; ++p) {
      ObjectId photo;
      if (ad > 1 && p == 0 && ad % 3 == 0) {
        // Share the previous ad's last photo.
        std::vector<ObjectId> prev = ads.ComponentsOf(ad - 1);
        photo = prev.back();
      } else {
        photo = photos.image(next_photo % photos.size()).id;
        ++next_photo;
      }
      (void)ads.Add(ad, photo);
    }
  }
  std::cout << "100 advertisements over " << next_photo
            << " distinct photos (" << ads.num_pairs()
            << " parent-component pairs; shared photos included)\n";

  // --- Photo-level atomic query: AdPhoto ~ red. ---
  Histogram red = TargetHistogram(photos.palette(), {1.0, 0.1, 0.1});
  Result<QbicColorSource> photo_red =
      QbicColorSource::Create(&photos, red, "AdPhoto~red");
  if (!photo_red.ok()) {
    std::cerr << photo_red.status().ToString() << "\n";
    return 1;
  }

  // --- Lift to advertisement level: an ad is red-ish if SOME photo is. ---
  Result<SubobjectSource> ad_red = SubobjectSource::Create(
      &*photo_red, &ads, MaxRule(), "Advertisement~red");
  if (!ad_red.ok()) {
    std::cerr << ad_red.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\ntop-5 advertisements by 'has a red photo':\n";
  for (int i = 0; i < 5; ++i) {
    std::optional<GradedObject> next = ad_red->NextSorted();
    if (!next.has_value()) break;
    std::cout << "  ad " << next->id << "  grade " << next->grade
              << "  (photos:";
    for (ObjectId photo : ads.ComponentsOf(next->id)) {
      std::cout << " " << photo;
    }
    std::cout << ")\n";
  }
  ad_red->RestartSorted();

  // --- A second ad-level attribute and the lazy join. ---
  std::vector<GradedObject> slot_grades;
  for (ObjectId ad = 1; ad <= 100; ++ad) {
    slot_grades.push_back({ad, rng.NextDouble()});
  }
  Result<VectorSource> slot =
      VectorSource::Create(std::move(slot_grades), "SlotValue");
  if (!slot.ok()) {
    std::cerr << slot.status().ToString() << "\n";
    return 1;
  }

  AccessCost cost;
  CountingSource counted_red(&*ad_red, &cost);
  CountingSource counted_slot(&*slot, &cost);
  Result<TopKJoinSource> join = TopKJoinSource::Create(
      &counted_red, &counted_slot, MinRule(), "red*slot");
  if (!join.ok()) {
    std::cerr << join.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\ntop-5 of (red photo AND valuable slot), via the lazy A0 "
               "join:\n";
  for (int i = 0; i < 5; ++i) {
    std::optional<GradedObject> next = join->NextSorted();
    if (!next.has_value()) break;
    std::cout << "  ad " << next->id << "  grade " << next->grade << "\n";
  }
  std::cout << "join pulled only " << cost.total()
            << " accesses from its inputs (2x100 objects available) — "
               "it certifies each answer incrementally.\n";
  return 0;
}
