// The paper's running example, end to end: a store selling compact disks.
//
// A relational table holds (Artist, Title); a QBIC-like image subsystem
// holds the album-cover features. The query
//     (Artist='Beatles') AND (AlbumColor='red')
// mixes a traditional 0/1 predicate with a graded similarity predicate; the
// middleware merges them and returns a graded set sorted by color match
// among Beatles albums only (paper §4.1).

#include <iostream>

#include "catalog/catalog.h"
#include "image/qbic_source.h"
#include "relational/relational_source.h"
#include "sql/interpreter.h"

using namespace fuzzydb;

namespace {

template <typename T>
Result<std::unique_ptr<GradedSource>> Wrap(T src) {
  std::unique_ptr<GradedSource> out = std::make_unique<T>(std::move(src));
  return out;
}

}  // namespace

int main() {
  // --- Build the album-cover image collection (synthetic stand-in for the
  // store's scanned covers; see DESIGN.md, Substitutions). ---
  ImageStoreOptions image_options;
  image_options.num_images = 200;
  image_options.palette_size = 64;
  image_options.seed = 1969;
  Result<ImageStore> store_result = ImageStore::Generate(image_options);
  if (!store_result.ok()) {
    std::cerr << store_result.status().ToString() << "\n";
    return 1;
  }
  ImageStore store = std::move(*store_result);

  // --- Build the relational side: 200 albums, 4 artists. ---
  Schema schema = *Schema::Create(
      {{"Artist", ValueType::kString}, {"Title", ValueType::kString}});
  Table cds("cds", schema);
  (void)cds.CreateIndex("Artist");
  const char* artists[] = {"Beatles", "Kinks", "Who", "Zombies"};
  for (size_t i = 0; i < store.size(); ++i) {
    Status st = cds.Insert(
        store.image(i).id,
        {Value(std::string(artists[i % 4])),
         Value(std::string("Album #") + std::to_string(i))});
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  // --- Register both subsystems with the middleware catalog. ---
  Catalog catalog;
  (void)catalog.RegisterAttribute(
      "Artist",
      [&cds](const std::string& target)
          -> Result<std::unique_ptr<GradedSource>> {
        Result<Predicate> pred = Predicate::Create(
            cds.schema(), "Artist", CompareOp::kEq, Value(target));
        if (!pred.ok()) return pred.status();
        Result<RelationalSource> src =
            RelationalSource::Create(&cds, std::move(*pred));
        if (!src.ok()) return src.status();
        return Wrap(std::move(*src));
      });
  (void)catalog.RegisterAttribute(
      "AlbumColor",
      [&store](const std::string& target)
          -> Result<std::unique_ptr<GradedSource>> {
        Rgb rgb = target == "red" ? Rgb{1.0, 0.1, 0.1} : Rgb{0.1, 0.1, 1.0};
        Result<QbicColorSource> src = QbicColorSource::Create(
            &store, TargetHistogram(store.palette(), rgb),
            "AlbumColor~" + target);
        if (!src.ok()) return src.status();
        return Wrap(std::move(*src));
      });

  // --- Run the running example through the SQL surface. ---
  const char* queries[] = {
      "SELECT TOP 5 FROM cds WHERE Artist = 'Beatles' AND AlbumColor ~ 'red'",
      "SELECT TOP 5 FROM cds WHERE Artist = 'Beatles' AND AlbumColor ~ 'red'"
      " VIA naive",
      "SELECT TOP 5 FROM cds WHERE Artist = 'Zombies' OR AlbumColor ~ 'blue'",
  };
  for (const char* sql : queries) {
    std::cout << "\n> " << sql << "\n";
    Result<ExecutionResult> r = RunSelect(sql, &catalog);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    std::cout << FormatResult(*r);
    // Show the artist of each hit so the semantics are visible.
    for (const GradedObject& g : r->topk.items) {
      Result<const std::vector<Value>*> row = cds.Get(g.id);
      if (row.ok()) {
        std::cout << "      " << (**row)[1].AsString() << " by "
                  << (**row)[0].AsString() << "\n";
      }
    }
  }
  return 0;
}
