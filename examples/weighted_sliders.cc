// User-preference sliders (paper §5): the user cares more about color than
// shape, and drags a slider. The Fagin–Wimmers formula turns the slider
// positions into a weighted scoring rule; A0 keeps answering correctly, and
// the ranking morphs continuously from shape-dominated to color-dominated.

#include <iomanip>
#include <iostream>

#include "core/weights.h"
#include "middleware/fagin.h"
#include "middleware/vector_source.h"

using namespace fuzzydb;

int main() {
  // Ten candidate objects with a color grade and a shape grade each.
  std::vector<GradedObject> color_grades{
      {1, 0.95}, {2, 0.90}, {3, 0.85}, {4, 0.55}, {5, 0.50},
      {6, 0.45}, {7, 0.30}, {8, 0.25}, {9, 0.20}, {10, 0.10}};
  std::vector<GradedObject> shape_grades{
      {1, 0.10}, {2, 0.20}, {3, 0.30}, {4, 0.60}, {5, 0.65},
      {6, 0.70}, {7, 0.85}, {8, 0.90}, {9, 0.92}, {10, 0.99}};
  Result<VectorSource> color =
      VectorSource::Create(std::move(color_grades), "Color~red");
  Result<VectorSource> shape =
      VectorSource::Create(std::move(shape_grades), "Shape~round");
  if (!color.ok() || !shape.ok()) {
    std::cerr << "setup failed\n";
    return 1;
  }
  std::vector<GradedSource*> sources{&*color, &*shape};

  std::cout << "query: (Color='red') AND (Shape='round') under min, top 3\n"
            << "slider = importance of color : importance of shape\n\n";
  std::cout << std::fixed << std::setprecision(3);
  for (double slider : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // Slider position 0 = all shape, 1 = all color.
    Result<Weighting> theta =
        Weighting::FromSliders({0.02 + slider, 1.02 - slider});
    if (!theta.ok()) {
      std::cerr << theta.status().ToString() << "\n";
      return 1;
    }
    ScoringRulePtr rule = WeightedRule(MinRule(), *theta);
    Result<TopKResult> top = FaginTopK(sources, *rule, 3);
    if (!top.ok()) {
      std::cerr << top.status().ToString() << "\n";
      return 1;
    }
    std::cout << "slider " << (*theta)[0] << ":" << (*theta)[1] << " ->";
    for (const GradedObject& g : top->items) {
      std::cout << "  #" << g.id << " (" << g.grade << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\nAt the shape end the round objects win; at the color end "
               "the red ones do; in between the balanced object #4/#5/#6 "
               "family surfaces. The transform satisfies D1-D3' (paper §5), "
               "so equal sliders reproduce the plain min ranking.\n";
  return 0;
}
